// FaultSpec grammar (parse / to_string round-trip, per-type overrides,
// malformed input) and FaultInjector determinism.
#include "cico/fault/fault.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace cico::fault {
namespace {

using net::MsgType;

TEST(FaultSpecTest, DefaultInjectsNothing) {
  FaultSpec s;
  EXPECT_FALSE(s.injects());
  EXPECT_DOUBLE_EQ(s.drop_prob(MsgType::Request), 0.0);
  EXPECT_DOUBLE_EQ(s.dup_prob(MsgType::Ack), 0.0);
  EXPECT_DOUBLE_EQ(s.delay_rate(MsgType::Recall).prob, 0.0);
  EXPECT_EQ(s.seed, 1u);
  EXPECT_EQ(s.max_retries, 8u);
  EXPECT_EQ(s.throttle_after, 0u);
}

TEST(FaultSpecTest, ParsesEveryKey) {
  const FaultSpec s = FaultSpec::parse(
      "drop=0.01,dup=0.005,delay=0.02:40,stall=0.001:200,"
      "seed=7,retries=3,backoff=120:4096,throttle=4");
  EXPECT_TRUE(s.injects());
  EXPECT_DOUBLE_EQ(s.drop, 0.01);
  EXPECT_DOUBLE_EQ(s.dup, 0.005);
  EXPECT_DOUBLE_EQ(s.delay.prob, 0.02);
  EXPECT_EQ(s.delay.cycles, 40u);
  EXPECT_DOUBLE_EQ(s.stall.prob, 0.001);
  EXPECT_EQ(s.stall.cycles, 200u);
  EXPECT_EQ(s.seed, 7u);
  EXPECT_EQ(s.max_retries, 3u);
  EXPECT_EQ(s.backoff_base, 120u);
  EXPECT_EQ(s.backoff_cap, 4096u);
  EXPECT_EQ(s.throttle_after, 4u);
}

TEST(FaultSpecTest, PerTypeOverridesInheritGlobalElsewhere) {
  const FaultSpec s = FaultSpec::parse(
      "drop=0.1,drop.recall=0.5,dup.ack=0.2,delay.writeback=0.3:10");
  EXPECT_DOUBLE_EQ(s.drop_prob(MsgType::Recall), 0.5);
  EXPECT_DOUBLE_EQ(s.drop_prob(MsgType::Request), 0.1);  // inherits global
  EXPECT_DOUBLE_EQ(s.dup_prob(MsgType::Ack), 0.2);
  EXPECT_DOUBLE_EQ(s.dup_prob(MsgType::Request), 0.0);
  EXPECT_DOUBLE_EQ(s.delay_rate(MsgType::Writeback).prob, 0.3);
  EXPECT_EQ(s.delay_rate(MsgType::Writeback).cycles, 10u);
  EXPECT_DOUBLE_EQ(s.delay_rate(MsgType::Request).prob, 0.0);
}

TEST(FaultSpecTest, PerTypeOverrideCanDisableAType) {
  const FaultSpec s = FaultSpec::parse("drop=0.5,drop.writeback=0");
  EXPECT_DOUBLE_EQ(s.drop_prob(MsgType::Writeback), 0.0);
  EXPECT_DOUBLE_EQ(s.drop_prob(MsgType::Request), 0.5);
}

TEST(FaultSpecTest, ToStringRoundTrips) {
  const char* text =
      "drop=0.01,dup=0.005,delay=0.02:40,stall=0.001:200,"
      "drop.recall=0.5,seed=7,retries=3,backoff=120:4096,throttle=4";
  const FaultSpec a = FaultSpec::parse(text);
  const FaultSpec b = FaultSpec::parse(a.to_string());
  EXPECT_EQ(a.to_string(), b.to_string());
  EXPECT_DOUBLE_EQ(b.drop_prob(MsgType::Recall), 0.5);
  EXPECT_EQ(b.seed, 7u);
}

TEST(FaultSpecTest, EmptyTokensAreIgnored) {
  const FaultSpec s = FaultSpec::parse(",drop=0.1,,");
  EXPECT_DOUBLE_EQ(s.drop, 0.1);
}

TEST(FaultSpecTest, RejectsMalformedSpecs) {
  const char* bad[] = {
      "drop",                 // missing =
      "drop=",                // empty value
      "drop=x",               // not a number
      "drop=1.5",             // probability outside [0,1]
      "drop=-0.1",            // probability outside [0,1]
      "bogus=1",              // unknown key
      "delay=0.5",            // missing :cycles
      "delay=0.5:0",          // zero-cycle fault
      "stall=0.5:zz",         // malformed cycle count
      "seed.request=3",       // key does not take a message type
      "drop.bogus=0.1",       // unknown message type
      "backoff=100",          // missing :cap
      "backoff=1:0",          // zero cap
  };
  for (const char* text : bad) {
    EXPECT_THROW((void)FaultSpec::parse(text), std::invalid_argument)
        << "accepted: " << text;
  }
}

TEST(FaultInjectorTest, SameSeedSameFates) {
  const FaultSpec spec = FaultSpec::parse("drop=0.1,dup=0.05,delay=0.2:30");
  auto draw = [&](std::uint64_t seed) {
    FaultSpec s = spec;
    s.seed = seed;
    FaultInjector inj(s);
    std::vector<int> fates;
    for (int i = 0; i < 1000; ++i) {
      const auto f = inj.fate(MsgType::Request, /*droppable=*/true);
      fates.push_back((f.dropped ? 1 : 0) | (f.duplicated ? 2 : 0) |
                      (f.delay != 0 ? 4 : 0));
    }
    return fates;
  };
  EXPECT_EQ(draw(42), draw(42));
  EXPECT_NE(draw(42), draw(43));
}

TEST(FaultInjectorTest, DroppedMessageIsNeitherDuplicatedNorDelayed) {
  FaultInjector inj(FaultSpec::parse("drop=1.0,dup=1.0,delay=1.0:5"));
  const auto f = inj.fate(MsgType::Request, /*droppable=*/true);
  EXPECT_TRUE(f.dropped);
  EXPECT_FALSE(f.duplicated);
  EXPECT_EQ(f.delay, 0u);
  EXPECT_EQ(inj.drops(), 1u);
  EXPECT_EQ(inj.drops_of(MsgType::Request), 1u);
  EXPECT_EQ(inj.dups(), 0u);
}

TEST(FaultInjectorTest, ReliableLegsAreNeverDropped) {
  FaultInjector inj(FaultSpec::parse("drop=1.0,dup=1.0,delay=1.0:5"));
  const auto f = inj.fate(MsgType::PrefetchReply, /*droppable=*/false);
  EXPECT_FALSE(f.dropped);
  EXPECT_TRUE(f.duplicated);   // dup/delay still apply to reliable legs
  EXPECT_EQ(f.delay, 5u);
  EXPECT_EQ(inj.drops(), 0u);
}

TEST(FaultInjectorTest, HandlerStall) {
  FaultInjector always(FaultSpec::parse("stall=1.0:200"));
  EXPECT_EQ(always.handler_stall(), 200u);
  EXPECT_EQ(always.stalls(), 1u);
  FaultInjector never(FaultSpec{});
  EXPECT_EQ(never.handler_stall(), 0u);
  EXPECT_EQ(never.stalls(), 0u);
}

}  // namespace
}  // namespace cico::fault
