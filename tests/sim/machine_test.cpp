// Engine tests: windowed execution, hit/miss accounting, barriers and
// epochs, locks, directives, prefetch, plans, trace mode, determinism and
// deadlock detection.
#include "cico/sim/machine.hpp"

#include <gtest/gtest.h>

#include "cico/sim/shared_array.hpp"

namespace cico::sim {
namespace {

SimConfig small_cfg(std::uint32_t nodes = 2) {
  SimConfig c;
  c.nodes = nodes;
  c.cache.size_bytes = 4096;  // 128 blocks
  c.cache.assoc = 4;
  c.cache.block_bytes = 32;
  return c;
}

TEST(MachineTest, HitsAndMissesAreCounted) {
  Machine m(small_cfg(1));
  const Addr a = m.heap().alloc(64, "A");
  m.run([&](Proc& p) {
    p.ld(a, 8, 1);      // read miss
    p.ld(a, 8, 1);      // hit
    p.ld(a + 8, 8, 1);  // hit (same block)
    p.ld(a + 32, 8, 1); // read miss (next block)
    p.st(a, 8, 2);      // write fault (upgrade of Shared copy)
    p.st(a, 8, 2);      // hit
  });
  const Stats& s = m.stats();
  EXPECT_EQ(s.total(Stat::SharedLoads), 4u);
  EXPECT_EQ(s.total(Stat::SharedStores), 2u);
  EXPECT_EQ(s.total(Stat::ReadMisses), 2u);
  EXPECT_EQ(s.total(Stat::WriteMisses), 0u);
  EXPECT_EQ(s.total(Stat::WriteFaults), 1u);
  EXPECT_GT(m.exec_time(), 0u);
}

TEST(MachineTest, WriteMissVsWriteFault) {
  Machine m(small_cfg(1));
  const Addr a = m.heap().alloc(64, "A");
  m.run([&](Proc& p) {
    p.st(a, 8, 1);       // cold write: write miss
    p.ld(a + 32, 8, 2);  // read miss
    p.st(a + 32, 8, 3);  // write fault
  });
  EXPECT_EQ(m.stats().total(Stat::WriteMisses), 1u);
  EXPECT_EQ(m.stats().total(Stat::WriteFaults), 1u);
}

TEST(MachineTest, BarrierAdvancesEpochAndSynchronizesTime) {
  Machine m(small_cfg(4));
  m.run([&](Proc& p) {
    p.compute(100 * (p.id() + 1));  // skewed arrival
    EXPECT_EQ(p.epoch(), 0u);
    p.barrier();
    EXPECT_EQ(p.epoch(), 1u);
    p.barrier();
    EXPECT_EQ(p.epoch(), 2u);
  });
  EXPECT_EQ(m.epochs_completed(), 2u);
  EXPECT_EQ(m.stats().total(Stat::Barriers), 8u);  // 2 per node
  // All nodes were lifted to the max arrival + barrier cost, twice.
  EXPECT_GE(m.exec_time(), 400u + 2 * m.config().cost.barrier);
}

TEST(MachineTest, CheckInAvoidsTrapForNextWriter) {
  // Producer-consumer: node 0 writes a block in epoch 0, node 1 writes it
  // in epoch 1.  Without a check-in the second write traps (recall);
  // with a check-in it is a cheap hardware fill.  This is THE mechanism
  // the whole paper rests on.
  auto run_variant = [&](bool with_checkin) {
    Machine m(small_cfg(2));
    const Addr a = m.heap().alloc(32, "A");
    m.run([&, with_checkin](Proc& p) {
      if (p.id() == 0) {
        p.st(a, 8, 1);
        if (with_checkin) p.check_in(a, 32);
      }
      p.barrier();
      if (p.id() == 1) p.st(a, 8, 2);
      p.barrier();
    });
    return std::pair{m.stats().total(Stat::Traps), m.exec_time()};
  };
  auto [traps_no, time_no] = run_variant(false);
  auto [traps_ci, time_ci] = run_variant(true);
  EXPECT_GT(traps_no, 0u);
  EXPECT_EQ(traps_ci, 0u);
  EXPECT_LT(time_ci, time_no);
}

TEST(MachineTest, CheckOutXAvoidsWriteFault) {
  Machine m(small_cfg(1));
  const Addr a = m.heap().alloc(32, "A");
  m.run([&](Proc& p) {
    p.check_out_x(a, 32);
    p.ld(a, 8, 1);  // hit: block already exclusive
    p.st(a, 8, 2);  // hit
  });
  EXPECT_EQ(m.stats().total(Stat::CheckOutX), 1u);
  EXPECT_EQ(m.stats().total(Stat::ReadMisses), 0u);
  EXPECT_EQ(m.stats().total(Stat::WriteFaults), 0u);
}

TEST(MachineTest, CheckOutSharedRange) {
  Machine m(small_cfg(1));
  const Addr a = m.heap().alloc(128, "A");  // 4 blocks
  m.run([&](Proc& p) {
    p.check_out_s(a, 128);
    for (int i = 0; i < 4; ++i) p.ld(a + 32 * i, 8, 1);
  });
  EXPECT_EQ(m.stats().total(Stat::CheckOutS), 4u);
  EXPECT_EQ(m.stats().total(Stat::ReadMisses), 0u);
}

TEST(MachineTest, PrefetchOverlapsLatency) {
  auto run_variant = [&](bool prefetch) {
    Machine m(small_cfg(1));
    const Addr a = m.heap().alloc(256, "A");  // 8 blocks
    m.run([&, prefetch](Proc& p) {
      if (prefetch) p.prefetch_s(a, 256);
      p.compute(2000);  // plenty of time for prefetches to land
      for (int i = 0; i < 8; ++i) p.ld(a + 32 * i, 8, 1);
    });
    return std::pair{m.stats().total(Stat::PrefetchUseful),
                     m.stats().total(Stat::StallCycles)};
  };
  auto [useful_no, stall_no] = run_variant(false);
  auto [useful_pf, stall_pf] = run_variant(true);
  EXPECT_EQ(useful_no, 0u);
  EXPECT_EQ(useful_pf, 8u);
  EXPECT_LT(stall_pf, stall_no);
}

TEST(MachineTest, LateAccessWaitsForPrefetch) {
  Machine m(small_cfg(1));
  const Addr a = m.heap().alloc(32, "A");
  m.run([&](Proc& p) {
    p.prefetch_s(a, 32);
    p.ld(a, 8, 1);  // immediately: prefetch still in flight
  });
  EXPECT_EQ(m.stats().total(Stat::PrefetchLate), 1u);
  EXPECT_EQ(m.stats().total(Stat::PrefetchUseful), 0u);
  // Only one protocol transaction happened.
  EXPECT_EQ(m.stats().total(Stat::ReadMisses) +
                m.stats().total(Stat::PrefetchIssued),
            1u);
}

TEST(MachineTest, PrefetchThatWouldTrapIsDropped) {
  Machine m(small_cfg(2));
  const Addr a = m.heap().alloc(32, "A");
  m.run([&](Proc& p) {
    if (p.id() == 0) p.st(a, 8, 1);  // node 0 takes the block exclusive
    p.barrier();
    if (p.id() == 1) {
      p.prefetch_s(a, 32);  // would need a recall: dropped
      p.compute(1000);
    }
    p.barrier();
  });
  EXPECT_EQ(m.stats().total(Stat::PrefetchDropped), 1u);
}

TEST(MachineTest, LocksAreMutuallyExclusiveAndDeterministic) {
  Machine m(small_cfg(4));
  SharedArray<std::int64_t> counter(m, "counter", 1);
  counter.set_raw(0, 0);
  m.run([&](Proc& p) {
    for (int i = 0; i < 10; ++i) {
      p.lock(counter.base());
      const auto v = counter.ld(p, 0, 1);
      p.compute(5);
      counter.st(p, 0, v + 1, 2);
      p.unlock(counter.base());
    }
  });
  EXPECT_EQ(counter.raw(0), 40);
  EXPECT_EQ(m.stats().total(Stat::LockAcquires), 40u);
}

TEST(MachineTest, SharedArrayValuesFlowBetweenNodes) {
  Machine m(small_cfg(2));
  SharedArray<double> a(m, "A", 16);
  SharedArray<double> b(m, "B", 16);
  for (std::size_t i = 0; i < 16; ++i) a.set_raw(i, static_cast<double>(i));
  m.run([&](Proc& p) {
    if (p.id() == 0) {
      for (std::size_t i = 0; i < 16; ++i) {
        a.st(p, i, a.ld(p, i, 1) * 2.0, 2);
      }
    }
    p.barrier();
    if (p.id() == 1) {
      for (std::size_t i = 0; i < 16; ++i) {
        b.st(p, i, a.ld(p, i, 3) + 1.0, 4);
      }
    }
  });
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_DOUBLE_EQ(b.raw(i), 2.0 * static_cast<double>(i) + 1.0);
  }
}

TEST(MachineTest, DeterministicAcrossRuns) {
  auto run_once = [] {
    Machine m(small_cfg(4));
    SharedArray<double> a(m, "A", 64);
    m.run([&](Proc& p) {
      for (int rep = 0; rep < 3; ++rep) {
        for (std::size_t i = p.id(); i < 64; i += 4) {
          a.st(p, i, a.ld(p, i, 1) + 1.0, 2);
        }
        p.barrier();
        // Read a neighbour's stripe too: cross-node traffic.
        for (std::size_t i = (p.id() + 1) % 4; i < 64; i += 4) {
          (void)a.ld(p, i, 3);
        }
        p.barrier();
      }
    });
    return std::tuple{m.exec_time(), m.stats().total(Stat::Traps),
                      m.stats().total(Stat::Messages),
                      m.stats().total(Stat::ReadMisses),
                      m.stats().total(Stat::WriteFaults)};
  };
  auto r1 = run_once();
  auto r2 = run_once();
  auto r3 = run_once();
  EXPECT_EQ(r1, r2);
  EXPECT_EQ(r1, r3);
}

TEST(MachineTest, TraceModeRecordsMissesAndFlushes) {
  SimConfig cfg = small_cfg(2);
  cfg.trace_mode = true;
  Machine m(cfg);
  trace::TraceWriter w;
  m.set_trace_writer(&w);
  const Addr a = m.heap().alloc(32, "A");
  w.set_labels(m.heap().trace_labels());
  m.run([&](Proc& p) {
    if (p.id() == 0) (void)p.ld(a, 8, 7);
    p.barrier();
    // After the flush the same access misses again, exposing the reuse.
    if (p.id() == 0) (void)p.ld(a, 8, 7);
    p.barrier();
  });
  trace::Trace t = w.take();
  ASSERT_EQ(t.misses.size(), 2u);
  EXPECT_EQ(t.misses[0].epoch, 0u);
  EXPECT_EQ(t.misses[1].epoch, 1u);
  EXPECT_EQ(t.misses[0].pc, 7u);
  EXPECT_EQ(t.misses[0].kind, trace::MissKind::ReadMiss);
  EXPECT_EQ(t.barriers.size(), 4u);  // 2 nodes x 2 barriers
}

TEST(MachineTest, PlanFetchExclusiveEliminatesWriteFault) {
  auto run_variant = [&](bool with_plan) {
    Machine m(small_cfg(1));
    const Addr a = m.heap().alloc(32, "A");
    DirectivePlan plan;
    plan.at(0, 0).fetch_exclusive.insert(m.config().cache.block_of(a));
    if (with_plan) m.set_plan(&plan);
    m.run([&](Proc& p) {
      (void)p.ld(a, 8, 1);
      p.st(a, 8, 2);
    });
    return std::pair{m.stats().total(Stat::WriteFaults),
                     m.stats().total(Stat::CheckOutX)};
  };
  auto [wf_no, cox_no] = run_variant(false);
  auto [wf_plan, cox_plan] = run_variant(true);
  EXPECT_EQ(wf_no, 1u);
  EXPECT_EQ(cox_no, 0u);
  EXPECT_EQ(wf_plan, 0u);
  EXPECT_EQ(cox_plan, 1u);
}

TEST(MachineTest, PlanEpochEndCheckInPreventsTrap) {
  auto run_variant = [&](bool with_plan) {
    Machine m(small_cfg(2));
    const Addr a = m.heap().alloc(32, "A");
    const Block b = m.config().cache.block_of(a);
    DirectivePlan plan;
    plan.at(0, 0).at_end.push_back({DirectiveKind::CheckIn, BlockRun{b, b}});
    if (with_plan) m.set_plan(&plan);
    m.run([&](Proc& p) {
      if (p.id() == 0) p.st(a, 8, 1);
      p.barrier();
      if (p.id() == 1) p.st(a, 8, 2);
    });
    return m.stats().total(Stat::Traps);
  };
  EXPECT_GT(run_variant(false), 0u);
  EXPECT_EQ(run_variant(true), 0u);
}

TEST(MachineTest, PlanCheckinAfterAccessReleasesRacedBlock) {
  // Node 0 writes a contended block, then node 1 does (staggered so the
  // check-in can land in between).  With checkin_after_access the block is
  // returned to Idle right after each store: node 1 never traps.
  auto run_variant = [&](bool with_plan) {
    Machine m(small_cfg(2));
    const Addr a = m.heap().alloc(32, "A");
    const Block b = m.config().cache.block_of(a);
    DirectivePlan plan;
    plan.at(0, 0).checkin_after_access.insert(b);
    plan.at(1, 0).checkin_after_access.insert(b);
    if (with_plan) m.set_plan(&plan);
    m.run([&](Proc& p) {
      if (p.id() == 1) p.compute(5000);
      p.st(a, 8, 1);
    });
    return std::pair{m.stats().total(Stat::Traps),
                     m.stats().total(Stat::CheckIns)};
  };
  auto [traps_no, ci_no] = run_variant(false);
  auto [traps_ci, ci_with] = run_variant(true);
  EXPECT_GT(traps_no, 0u);
  EXPECT_EQ(ci_no, 0u);
  EXPECT_EQ(traps_ci, 0u);
  EXPECT_EQ(ci_with, 2u);
}

TEST(MachineTest, DeadlockIsDetected) {
  Machine m(small_cfg(2));
  const Addr a = m.heap().alloc(32, "L");
  EXPECT_THROW(
      m.run([&](Proc& p) {
        if (p.id() == 0) {
          p.lock(a);
          p.barrier();  // holds the lock across the barrier
          p.unlock(a);
        } else {
          p.lock(a);  // waits forever: node 0 is at the barrier
          p.barrier();
          p.unlock(a);
        }
      }),
      SimDeadlock);
}

TEST(MachineTest, RunTwiceThrows) {
  Machine m(small_cfg(1));
  m.run([](Proc&) {});
  EXPECT_THROW(m.run([](Proc&) {}), std::logic_error);
}

TEST(MachineTest, EvictionSendsImplicitPut) {
  // Cache: 4096 B / 32 B = 128 blocks.  Touch 256 distinct blocks: half
  // must be evicted, and the directory must stay consistent (no stale
  // sharer entries -> a later writer of an evicted block must not trap).
  Machine m(small_cfg(1));
  const Addr a = m.heap().alloc(256 * 32, "A");
  m.run([&](Proc& p) {
    for (int i = 0; i < 256; ++i) (void)p.ld(a + 32 * i, 8, 1);
  });
  EXPECT_GE(m.stats().total(Stat::Evictions), 128u);
  EXPECT_EQ(m.directory().check_invariants(), "");
}

TEST(MachineTest, InvariantsHoldAfterMixedWorkload) {
  Machine m(small_cfg(4));
  SharedArray<double> a(m, "A", 256);
  m.run([&](Proc& p) {
    for (int rep = 0; rep < 2; ++rep) {
      for (std::size_t i = p.id(); i < 256; i += 4) {
        a.st(p, i, 1.0, 1);
      }
      p.barrier();
      for (std::size_t i = 0; i < 256; i += 16) (void)a.ld(p, i, 2);
      p.check_in(a.addr_of(0), a.bytes());
      p.barrier();
    }
  });
  EXPECT_EQ(m.directory().check_invariants(), "");
}

}  // namespace
}  // namespace cico::sim
