// Fault-injection behaviour of the simulator: per-seed determinism on the
// bundled apps, survival across seeds, watchdog and retry-budget aborts,
// prefetch throttling, paranoid-mode audits, and the invariant that faults
// perturb timing -- never data values.
#include <gtest/gtest.h>

#include <array>
#include <tuple>

#include "apps/jacobi.hpp"
#include "apps/matmul.hpp"
#include "cico/fault/fault.hpp"
#include "cico/sim/machine.hpp"
#include "cico/sim/shared_array.hpp"

namespace cico::sim {
namespace {

SimConfig small_cfg(std::uint32_t nodes, const char* faults = nullptr) {
  SimConfig c;
  c.nodes = nodes;
  c.cache.size_bytes = 4096;
  c.cache.assoc = 4;
  c.cache.block_bytes = 32;
  if (faults != nullptr) c.faults = fault::FaultSpec::parse(faults);
  return c;
}

/// One observable fingerprint of a run: execution time, every stat
/// counter, messages on the wire, and the injector's own telemetry.
struct Fingerprint {
  Cycle time = 0;
  std::array<std::uint64_t, kStatCount> stats{};
  std::uint64_t msgs = 0;
  std::uint64_t drops = 0;
  std::uint64_t dups = 0;
  std::uint64_t delays = 0;
  std::uint64_t stalls = 0;

  bool operator==(const Fingerprint& o) const {
    return time == o.time && stats == o.stats && msgs == o.msgs &&
           drops == o.drops && dups == o.dups && delays == o.delays &&
           stalls == o.stalls;
  }
};

Fingerprint run_app(apps::App& app, const SimConfig& cfg) {
  Machine m(cfg);
  app.setup(m, apps::Variant::None);
  m.run([&](Proc& p) { app.body(p); });
  EXPECT_TRUE(app.verify());
  EXPECT_EQ(m.directory().check_invariants(), "");
  Fingerprint f;
  f.time = m.exec_time();
  for (std::size_t i = 0; i < kStatCount; ++i) {
    f.stats[i] = m.stats().total(static_cast<Stat>(i));
  }
  f.msgs = m.network().total_sent();
  if (const auto* inj = m.fault_injector()) {
    f.drops = inj->drops();
    f.dups = inj->dups();
    f.delays = inj->delays();
    f.stalls = inj->stalls();
  }
  return f;
}

constexpr const char* kMix =
    "drop=0.03,dup=0.01,delay=0.05:25,stall=0.02:100,retries=0,throttle=4";

Fingerprint run_matmul(const SimConfig& cfg) {
  apps::MatMulConfig mc;
  mc.n = 24;
  mc.prow = 4;
  mc.pcol = 2;
  apps::MatMul app(mc, /*seed=*/2);
  return run_app(app, cfg);
}

Fingerprint run_jacobi(const SimConfig& cfg) {
  apps::JacobiConfig jc;
  jc.n = 16;
  jc.steps = 2;
  jc.p = 4;
  apps::Jacobi app(jc, /*seed=*/2);
  return run_app(app, cfg);
}

TEST(FaultSimTest, SameSeedIsBitIdenticalOnMatMul) {
  SimConfig cfg = small_cfg(8, kMix);
  cfg.faults.seed = 42;
  cfg.audit_invariants = true;
  const Fingerprint a = run_matmul(cfg);
  const Fingerprint b = run_matmul(cfg);
  EXPECT_GT(a.drops, 0u) << "mix injected nothing; test is vacuous";
  EXPECT_TRUE(a == b);
}

TEST(FaultSimTest, SameSeedIsBitIdenticalOnJacobi) {
  SimConfig cfg = small_cfg(16, kMix);
  cfg.faults.seed = 42;
  cfg.audit_invariants = true;
  const Fingerprint a = run_jacobi(cfg);
  const Fingerprint b = run_jacobi(cfg);
  EXPECT_GT(a.drops, 0u);
  EXPECT_TRUE(a == b);
}

TEST(FaultSimTest, DifferentSeedsDifferButAllComplete) {
  // Survival across seeds: every run finishes, verifies, and passes the
  // directory invariants (run_app asserts all three).
  SimConfig cfg = small_cfg(16, kMix);
  cfg.audit_invariants = true;
  bool any_difference = false;
  Fingerprint prev;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    cfg.faults.seed = seed;
    const Fingerprint f = run_jacobi(cfg);
    if (seed > 1 && !(f == prev)) any_difference = true;
    prev = f;
  }
  EXPECT_TRUE(any_difference) << "five seeds produced identical runs";
}

TEST(FaultSimTest, TotalLossWithUnboundedRetriesTripsWatchdog) {
  // drop=1.0 + retries=0 is a livelock: the node re-issues forever and
  // virtual time never advances.  The watchdog must convert that into a
  // SimDeadlock instead of a hang.
  SimConfig cfg = small_cfg(2, "drop=1.0,retries=0");
  cfg.watchdog_rounds = 16;
  Machine m(cfg);
  const Addr a = m.heap().alloc(32, "A");
  try {
    m.run([&](Proc& p) {
      if (p.id() == 0) p.st(a, 8, 1);
      p.barrier();
    });
    FAIL() << "expected SimDeadlock";
  } catch (const SimDeadlock& e) {
    EXPECT_NE(std::string(e.what()).find("watchdog"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("n0=mem"), std::string::npos)
        << e.what();
  }
  EXPECT_GT(m.stats().total(Stat::WatchdogTrips), 0u);
}

TEST(FaultSimTest, ExhaustedRetryBudgetIsProtocolTimeout) {
  SimConfig cfg = small_cfg(1, "drop=1.0,retries=3");
  Machine m(cfg);
  const Addr a = m.heap().alloc(32, "A");
  try {
    m.run([&](Proc& p) { p.st(a, 8, 1); });
    FAIL() << "expected ProtocolTimeout";
  } catch (const ProtocolTimeout& e) {
    EXPECT_NE(std::string(e.what()).find("retry budget"), std::string::npos)
        << e.what();
  }
  EXPECT_EQ(m.stats().total(Stat::Retries), 3u);
}

TEST(FaultSimTest, PrefetchEngineThrottlesAfterConsecutiveFailures) {
  // Three blocks held exclusive by node 0: node 1's prefetches are all
  // nacked.  With throttle=2 the engine mutes itself after the second
  // consecutive failure, so the third prefetch is not even issued.
  SimConfig cfg = small_cfg(2, "throttle=2");
  Machine m(cfg);
  const Addr a = m.heap().alloc(96, "A");
  m.run([&](Proc& p) {
    if (p.id() == 0) {
      for (int i = 0; i < 3; ++i) p.st(a + 32 * i, 8, 1);
    }
    p.barrier();
    if (p.id() == 1) {
      for (int i = 0; i < 3; ++i) p.prefetch_s(a + 32 * i, 32);
      p.compute(1000);
    }
    p.barrier();
  });
  EXPECT_EQ(m.stats().total(Stat::PrefetchDropped), 2u);
  EXPECT_EQ(m.stats().total(Stat::PrefetchThrottled), 1u);
}

TEST(FaultSimTest, ParanoidModePassesOnCleanRun) {
  SimConfig cfg = small_cfg(4);
  cfg.audit_invariants = true;
  Machine m(cfg);
  SharedArray<double> a(m, "A", 64);
  m.run([&](Proc& p) {
    for (std::size_t i = p.id(); i < 64; i += 4) a.st(p, i, 1.0, 1);
    p.barrier();
    for (std::size_t i = 0; i < 64; i += 8) (void)a.ld(p, i, 2);
    p.barrier();
  });
  EXPECT_EQ(m.directory().check_invariants(), "");
}

TEST(FaultSimTest, FaultsPerturbTimingNeverData) {
  // Data values are computed by real host code; injected faults may only
  // change timing and statistics.  Node 0 produces, node 1 consumes.
  SimConfig cfg = small_cfg(2, "drop=0.2,dup=0.1,retries=0");
  cfg.faults.seed = 9;
  cfg.audit_invariants = true;
  Machine m(cfg);
  SharedArray<double> a(m, "A", 32);
  SharedArray<double> b(m, "B", 32);
  m.run([&](Proc& p) {
    if (p.id() == 0) {
      for (std::size_t i = 0; i < 32; ++i) {
        a.st(p, i, 3.0 * static_cast<double>(i), 1);
      }
    }
    p.barrier();
    if (p.id() == 1) {
      for (std::size_t i = 0; i < 32; ++i) {
        b.st(p, i, a.ld(p, i, 2) + 1.0, 3);
      }
    }
  });
  for (std::size_t i = 0; i < 32; ++i) {
    EXPECT_DOUBLE_EQ(b.raw(i), 3.0 * static_cast<double>(i) + 1.0);
  }
  EXPECT_GT(m.stats().total(Stat::MsgDropped), 0u);
  EXPECT_EQ(m.stats().total(Stat::MsgDropped), m.fault_injector()->drops());
  EXPECT_GT(m.stats().total(Stat::Retries), 0u);
}

TEST(FaultSimTest, DisabledFaultsLeaveNoInjector) {
  Machine m(small_cfg(1));
  EXPECT_EQ(m.fault_injector(), nullptr);
}

}  // namespace
}  // namespace cico::sim
