// Property test for the CICO guarantee (section 4.5): "CICO annotations
// do not affect a program's semantics.  Thus, even if the annotations are
// inserted at inappropriate points in the program, they only affect its
// performance."
//
// A deterministic race-free workload is run while a directive-injector
// sprays RANDOM check-out/check-in/prefetch directives (random kinds,
// random addresses, random moments) over it.  Results must be
// bit-identical to the clean run, and the directory must stay consistent.
#include <gtest/gtest.h>

#include "cico/common/rng.hpp"
#include "cico/sim/machine.hpp"
#include "cico/sim/shared_array.hpp"

namespace cico::sim {
namespace {

struct Outcome {
  std::vector<double> values;
  std::string invariants;
};

Outcome run(std::uint64_t chaos_seed, bool inject) {
  SimConfig cfg;
  cfg.nodes = 4;
  cfg.cache.size_bytes = 2048;  // small: eviction paths get exercised too
  Machine m(cfg);
  SharedArray<double> a(m, "A", 96);
  SharedArray<double> b(m, "B", 96);
  for (std::size_t i = 0; i < 96; ++i) a.set_raw(i, static_cast<double>(i));

  m.run([&](Proc& p) {
    Rng chaos(chaos_seed * 1315423911u + p.id());
    auto maybe_inject = [&] {
      if (!inject || chaos.below(3) != 0) return;
      const Addr addr = a.base() + chaos.below(2) * (b.base() - a.base()) +
                        chaos.below(96) * sizeof(double);
      const std::uint64_t len = (1 + chaos.below(6)) * sizeof(double);
      switch (chaos.below(5)) {
        case 0: p.check_out_x(addr, len); break;
        case 1: p.check_out_s(addr, len); break;
        case 2: p.check_in(addr, len); break;
        case 3: p.prefetch_s(addr, len); break;
        default: p.prefetch_x(addr, len); break;
      }
    };

    // Round 1: each node squares its stripe of A.
    for (std::size_t i = p.id() * 24; i < (p.id() + 1) * 24; ++i) {
      maybe_inject();
      a.st(p, i, a.ld(p, i, 1) * 2.0, 2);
    }
    p.barrier();
    // Round 2: each node sums a rotated stripe into B.
    const std::size_t base = ((p.id() + 1) % 4) * 24;
    for (std::size_t i = 0; i < 24; ++i) {
      maybe_inject();
      b.st(p, base + i, a.ld(p, base + i, 3) + 1.0, 4);
    }
    p.barrier();
    maybe_inject();
  });

  Outcome out;
  for (std::size_t i = 0; i < 96; ++i) {
    out.values.push_back(a.raw(i));
    out.values.push_back(b.raw(i));
  }
  out.invariants = m.directory().check_invariants();
  return out;
}

class DirectiveChaos : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DirectiveChaos, RandomDirectivesNeverChangeResults) {
  const Outcome clean = run(GetParam(), /*inject=*/false);
  const Outcome chaos = run(GetParam(), /*inject=*/true);
  EXPECT_EQ(clean.values, chaos.values);
  EXPECT_EQ(clean.invariants, "");
  EXPECT_EQ(chaos.invariants, "");
}

INSTANTIATE_TEST_SUITE_P(Seeds, DirectiveChaos,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u, 66u, 77u,
                                           88u, 99u, 110u));

}  // namespace
}  // namespace cico::sim
