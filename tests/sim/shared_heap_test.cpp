#include "cico/sim/shared_heap.hpp"

#include <gtest/gtest.h>

namespace cico::sim {
namespace {

TEST(SharedHeapTest, AllocationsAreBlockAlignedAndDisjoint) {
  SharedHeap h(0x1000, 32);
  const Addr a = h.alloc(100, "A");
  const Addr b = h.alloc(64, "B");
  EXPECT_EQ(a, 0x1000u);
  EXPECT_EQ(a % 32, 0u);
  EXPECT_EQ(b % 32, 0u);
  EXPECT_GE(b, a + 100);
  EXPECT_EQ(b, 0x1000u + 128);  // 100 rounded up to 4 blocks
}

TEST(SharedHeapTest, FindMapsAddressesToRegions) {
  SharedHeap h(0x1000, 32);
  h.alloc(100, "A");
  const Addr b = h.alloc(64, "B");
  ASSERT_NE(h.find(0x1000), nullptr);
  EXPECT_EQ(h.find(0x1000)->label, "A");
  EXPECT_EQ(h.find(0x1000 + 99)->label, "A");
  EXPECT_EQ(h.find(0x1000 + 100), nullptr);  // padding gap
  EXPECT_EQ(h.find(b)->label, "B");
  EXPECT_EQ(h.find(0x500), nullptr);
}

TEST(SharedHeapTest, ByLabel) {
  SharedHeap h(0, 32);
  h.alloc(10, "grid", false);
  const Region* r = h.by_label("grid");
  ASSERT_NE(r, nullptr);
  EXPECT_FALSE(r->regular);
  EXPECT_EQ(h.by_label("nope"), nullptr);
}

TEST(SharedHeapTest, DuplicateLabelThrows) {
  SharedHeap h(0, 32);
  h.alloc(10, "A");
  EXPECT_THROW(h.alloc(10, "A"), std::invalid_argument);
}

TEST(SharedHeapTest, ZeroBytesThrows) {
  SharedHeap h(0, 32);
  EXPECT_THROW(h.alloc(0, "Z"), std::invalid_argument);
}

TEST(SharedHeapTest, TraceLabelsMirrorRegions) {
  SharedHeap h(0x100, 32);
  h.alloc(50, "X");
  h.alloc(60, "Y", false);
  auto labels = h.trace_labels();
  ASSERT_EQ(labels.size(), 2u);
  EXPECT_EQ(labels[0].label, "X");
  EXPECT_TRUE(labels[0].regular);
  EXPECT_EQ(labels[1].label, "Y");
  EXPECT_FALSE(labels[1].regular);
  EXPECT_EQ(h.allocated(), 110u);
}

}  // namespace
}  // namespace cico::sim
