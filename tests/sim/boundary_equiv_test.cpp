// Cross-thread equivalence of the sharded boundary phase: for any
// boundary_threads value the simulator must produce the SAME run, observed
// through every deterministic channel -- execution time, epoch count, every
// per-node stat counter, network totals, fault-injector telemetry, and the
// collected trace text.  Covered variants: fault-free, the standard fault
// mix, paranoid audits, and trace mode.  boundary_batch_min is lowered to 2
// so these small workloads actually dispatch batches to the worker pool
// (the default of 4 would run most of them inline).
#include <gtest/gtest.h>

#include <array>
#include <sstream>
#include <string>
#include <vector>

#include "apps/jacobi.hpp"
#include "apps/matmul.hpp"
#include "cico/fault/fault.hpp"
#include "cico/sim/machine.hpp"
#include "cico/trace/trace.hpp"

namespace cico::sim {
namespace {

constexpr const char* kMix =
    "drop=0.03,dup=0.01,delay=0.05:25,stall=0.02:100,retries=0,throttle=4,"
    "seed=11";

enum class AppKind { MatMul, Jacobi };

SimConfig equiv_cfg(AppKind app, std::uint32_t threads, const char* faults,
                    bool paranoid, bool trace_mode) {
  SimConfig c;
  c.nodes = app == AppKind::MatMul ? 8 : 16;
  c.cache.size_bytes = 4096;
  c.cache.assoc = 4;
  c.cache.block_bytes = 32;
  c.boundary_threads = threads;
  c.boundary_batch_min = 2;
  if (faults != nullptr) c.faults = fault::FaultSpec::parse(faults);
  c.audit_invariants = paranoid;
  c.trace_mode = trace_mode;
  return c;
}

std::unique_ptr<apps::App> make_app(AppKind app) {
  if (app == AppKind::MatMul) {
    apps::MatMulConfig c;
    c.n = 24;
    c.prow = 4;
    c.pcol = 2;
    return std::make_unique<apps::MatMul>(c, /*seed=*/2);
  }
  apps::JacobiConfig c;
  c.n = 16;
  c.steps = 2;
  c.p = 4;
  return std::make_unique<apps::Jacobi>(c, /*seed=*/2);
}

/// Everything deterministic a run exposes.  Per-node stat rows (not just
/// totals) so a cross-thread accounting error cannot hide by shifting a
/// count from one node to another.
struct Fingerprint {
  Cycle time = 0;
  EpochId epochs = 0;
  std::vector<std::array<std::uint64_t, kStatCount>> stats;
  std::uint64_t msgs = 0;
  std::uint64_t drops = 0;
  std::uint64_t dups = 0;
  std::uint64_t delays = 0;
  std::uint64_t stalls = 0;
  std::string trace_text;

  bool operator==(const Fingerprint& o) const = default;
};

Fingerprint run_once(AppKind app, std::uint32_t threads,
                     const char* faults = nullptr, bool paranoid = false,
                     bool trace_mode = false) {
  const SimConfig cfg = equiv_cfg(app, threads, faults, paranoid, trace_mode);
  Machine m(cfg);
  EXPECT_EQ(m.boundary_workers(), threads);
  trace::TraceWriter w;
  if (trace_mode) m.set_trace_writer(&w);
  std::unique_ptr<apps::App> a = make_app(app);
  a->setup(m, apps::Variant::None);
  m.run([&](Proc& p) { a->body(p); });
  EXPECT_TRUE(a->verify());
  EXPECT_EQ(m.directory().check_invariants(), "");

  Fingerprint f;
  f.time = m.exec_time();
  f.epochs = m.epochs_completed();
  f.stats.resize(cfg.nodes);
  for (NodeId n = 0; n < cfg.nodes; ++n) {
    for (std::size_t i = 0; i < kStatCount; ++i) {
      f.stats[n][i] = m.stats().node(n, static_cast<Stat>(i));
    }
  }
  f.msgs = m.network().total_sent();
  if (const auto* inj = m.fault_injector()) {
    f.drops = inj->drops();
    f.dups = inj->dups();
    f.delays = inj->delays();
    f.stalls = inj->stalls();
  }
  if (trace_mode) {
    std::ostringstream os;
    trace::save_text(w.take(), os);
    f.trace_text = os.str();
  }
  return f;
}

constexpr std::uint32_t kThreadCounts[] = {2, 3, 4};

class BoundaryEquiv : public ::testing::TestWithParam<AppKind> {};

TEST_P(BoundaryEquiv, FaultFreeRunsAreByteIdentical) {
  const Fingerprint serial = run_once(GetParam(), 1);
  for (std::uint32_t t : kThreadCounts) {
    EXPECT_EQ(run_once(GetParam(), t), serial) << "threads=" << t;
  }
}

TEST_P(BoundaryEquiv, FaultRunsAreByteIdentical) {
  const Fingerprint serial = run_once(GetParam(), 1, kMix);
  for (std::uint32_t t : kThreadCounts) {
    EXPECT_EQ(run_once(GetParam(), t, kMix), serial) << "threads=" << t;
  }
}

TEST_P(BoundaryEquiv, ParanoidRunsAreByteIdentical) {
  const Fingerprint serial =
      run_once(GetParam(), 1, nullptr, /*paranoid=*/true);
  for (std::uint32_t t : kThreadCounts) {
    EXPECT_EQ(run_once(GetParam(), t, nullptr, true), serial)
        << "threads=" << t;
  }
}

TEST_P(BoundaryEquiv, TraceModeProducesIdenticalTraces) {
  const Fingerprint serial =
      run_once(GetParam(), 1, nullptr, false, /*trace_mode=*/true);
  ASSERT_FALSE(serial.trace_text.empty());
  for (std::uint32_t t : kThreadCounts) {
    EXPECT_EQ(run_once(GetParam(), t, nullptr, false, true), serial)
        << "threads=" << t;
  }
}

INSTANTIATE_TEST_SUITE_P(Apps, BoundaryEquiv,
                         ::testing::Values(AppKind::MatMul, AppKind::Jacobi),
                         [](const auto& info) {
                           return info.param == AppKind::MatMul ? "matmul"
                                                                : "jacobi";
                         });

// The boundary_rounds counter itself must be deterministic and visible.
TEST(BoundaryEquivStats, BoundaryRoundsCountedOnce) {
  const Fingerprint f = run_once(AppKind::MatMul, 1);
  std::uint64_t rounds = 0;
  for (const auto& row : f.stats) {
    rounds += row[static_cast<std::size_t>(Stat::BoundaryRounds)];
  }
  EXPECT_GT(rounds, 0u);
  // Charged to node 0 only.
  EXPECT_EQ(rounds,
            f.stats[0][static_cast<std::size_t>(Stat::BoundaryRounds)]);
}

// Host wall-clock accessors report sane values after a run.
TEST(BoundaryEquivStats, HostTimingIsPopulated) {
  const SimConfig cfg = equiv_cfg(AppKind::MatMul, 2, nullptr, false, false);
  Machine m(cfg);
  std::unique_ptr<apps::App> a = make_app(AppKind::MatMul);
  a->setup(m, apps::Variant::None);
  m.run([&](Proc& p) { a->body(p); });
  EXPECT_GT(m.host_total_seconds(), 0.0);
  EXPECT_GT(m.host_boundary_seconds(), 0.0);
  EXPECT_LE(m.host_boundary_seconds(), m.host_total_seconds());
}

}  // namespace
}  // namespace cico::sim
