// Tests for the post-store extension (KSR-1 style, paper section 1) and
// the DirectivePlan text serialization.
#include <gtest/gtest.h>

#include <sstream>

#include "cico/sim/machine.hpp"
#include "cico/sim/plan_io.hpp"
#include "cico/sim/shared_array.hpp"

namespace cico::sim {
namespace {

SimConfig cfg(std::uint32_t nodes) {
  SimConfig c;
  c.nodes = nodes;
  c.cache.size_bytes = 8192;
  return c;
}

TEST(PostStoreTest, PushesCopiesToPastSharers) {
  // Node 0 writes; nodes 1..3 read (becoming sharers), node 0 re-writes
  // (invalidating them -> they become PAST sharers), then post-stores.
  // The readers' next reads must all HIT.
  Machine m(cfg(4));
  const Addr a = m.heap().alloc(32, "A");
  m.run([&](Proc& p) {
    if (p.id() == 0) p.st(a, 8, 1);
    p.barrier();
    if (p.id() != 0) (void)p.ld(a, 8, 2);
    p.barrier();
    if (p.id() == 0) {
      p.st(a, 8, 3);  // upgrade: invalidates the readers
      p.post_store(a, 32);
    }
    p.barrier();
    if (p.id() != 0) (void)p.ld(a, 8, 4);  // should all hit now
  });
  EXPECT_EQ(m.stats().total(Stat::PostStores), 1u);
  // Final reads: 3 nodes, 0 misses for them in the last epoch; total read
  // misses are exactly the 3 from the first read epoch.
  EXPECT_EQ(m.stats().total(Stat::ReadMisses), 3u);
  EXPECT_EQ(m.directory().check_invariants(), "");
}

TEST(PostStoreTest, WriterKeepsSharedCopy) {
  Machine m(cfg(2));
  const Addr a = m.heap().alloc(32, "A");
  m.run([&](Proc& p) {
    if (p.id() == 0) {
      p.st(a, 8, 1);
      p.post_store(a, 32);
      (void)p.ld(a, 8, 2);  // hit on the kept Shared copy
    }
  });
  EXPECT_EQ(m.stats().total(Stat::ReadMisses), 0u);
  EXPECT_EQ(m.cache_of(0).state_of(m.config().cache.block_of(a)),
            mem::LineState::Shared);
  EXPECT_EQ(m.directory().check_invariants(), "");
}

TEST(PostStoreTest, NoOpWithoutExclusiveCopy) {
  Machine m(cfg(2));
  const Addr a = m.heap().alloc(32, "A");
  m.run([&](Proc& p) {
    if (p.id() == 0) (void)p.ld(a, 8, 1);  // Shared, not Exclusive
    p.post_store(a, 32);                   // silently ignored
  });
  EXPECT_EQ(m.stats().total(Stat::PostStores), 0u);
  EXPECT_EQ(m.directory().check_invariants(), "");
}

TEST(PostStoreTest, BeatsCheckInForMultiConsumer) {
  // Producer updates a table every epoch; 7 consumers read it every
  // epoch.  check_in makes the consumers MISS cheaply; post_store makes
  // them HIT.  (This is the quantitative difference the paper alludes to
  // when it calls post-store "similar, though not identical" to
  // check-in.)
  auto run_variant = [&](int mode) {  // 0 none, 1 check_in, 2 post_store
    Machine m(cfg(8));
    SharedArray<double> t(m, "T", 64);
    m.run([&](Proc& p) {
      for (int it = 0; it < 4; ++it) {
        if (p.id() == 0) {
          for (std::size_t i = 0; i < 64; ++i) {
            t.st(p, i, static_cast<double>(it + 1), 1);
          }
          if (mode == 1) p.check_in(t.base(), t.bytes());
          if (mode == 2) p.post_store(t.base(), t.bytes());
        }
        p.barrier();
        double sum = 0;
        for (std::size_t i = 0; i < 64; ++i) sum += t.ld(p, i, 2);
        p.compute(static_cast<Cycle>(sum) % 7 + 1);
        p.barrier();
      }
    });
    return m.exec_time();
  };
  const Cycle none = run_variant(0);
  const Cycle ci = run_variant(1);
  const Cycle ps = run_variant(2);
  EXPECT_LT(ci, none);
  EXPECT_LT(ps, ci);
}

TEST(PlanIoTest, RoundTrip) {
  DirectivePlan plan;
  auto& d = plan.at(3, 7);
  d.at_start.push_back({DirectiveKind::CheckOutX, BlockRun{10, 20}});
  d.at_start.push_back({DirectiveKind::PrefetchS, BlockRun{30, 30}});
  d.at_end.push_back({DirectiveKind::CheckIn, BlockRun{10, 25}});
  d.fetch_exclusive = {100, 101};
  d.checkin_after_access = {200};
  d.checkin_after_write = {300, 301, 302};
  plan.at(0, 0).at_end.push_back({DirectiveKind::CheckIn, BlockRun{1, 1}});

  std::stringstream ss;
  save_plan(plan, ss);
  DirectivePlan back = load_plan(ss);

  EXPECT_EQ(back.entries(), plan.entries());
  const NodeEpochDirectives* nd = back.find(3, 7);
  ASSERT_NE(nd, nullptr);
  EXPECT_EQ(nd->at_start, d.at_start);
  EXPECT_EQ(nd->at_end, d.at_end);
  EXPECT_EQ(nd->fetch_exclusive, d.fetch_exclusive);
  EXPECT_EQ(nd->checkin_after_access, d.checkin_after_access);
  EXPECT_EQ(nd->checkin_after_write, d.checkin_after_write);
  EXPECT_EQ(back.total_directives(), plan.total_directives());
}

TEST(PlanIoTest, StableOutput) {
  DirectivePlan plan;
  plan.at(1, 2).fetch_exclusive = {5, 3, 9};
  std::stringstream s1, s2;
  save_plan(plan, s1);
  save_plan(load_plan(s1), s2);
  // Re-serializing the loaded plan gives identical text (sorted order).
  std::stringstream s1b;
  save_plan(plan, s1b);
  EXPECT_EQ(s1b.str(), s2.str());
}

TEST(PlanIoTest, Errors) {
  std::stringstream bad1("nope\n");
  EXPECT_THROW(load_plan(bad1), std::runtime_error);
  std::stringstream bad2("cico-plan v1\nX 5\n");  // record before entry
  EXPECT_THROW(load_plan(bad2), std::runtime_error);
  std::stringstream bad3("cico-plan v1\nE 0 0\nS 99 1 2\n");  // bad kind
  EXPECT_THROW(load_plan(bad3), std::runtime_error);
  std::stringstream bad4("cico-plan v1\nE 0 0\nQ 1\n");  // unknown tag
  EXPECT_THROW(load_plan(bad4), std::runtime_error);
}

}  // namespace
}  // namespace cico::sim
