// load_plan error reporting: every malformed input names the 1-based line
// number and quotes the offending text, so a truncated or hand-edited plan
// points straight at its first bad line.
#include <gtest/gtest.h>

#include <sstream>

#include "cico/sim/plan_io.hpp"

namespace cico::sim {
namespace {

void expect_error(const std::string& text, const std::string& needle) {
  std::istringstream in(text);
  try {
    (void)load_plan(in);
    FAIL() << "accepted malformed plan: " << text;
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find(needle), std::string::npos) << msg;
    EXPECT_EQ(msg.rfind("plan: ", 0), 0u) << msg;
  }
}

TEST(PlanIoErrorTest, BadHeader) {
  expect_error("bogus\n", "bad header");
  expect_error("bogus\n", "line 1");
  expect_error("", "bad header");
}

TEST(PlanIoErrorTest, MalformedEntry) {
  expect_error("cico-plan v1\nE x\n", "malformed entry at line 2");
}

TEST(PlanIoErrorTest, RecordBeforeEntry) {
  expect_error("cico-plan v1\nX 5\n", "record before entry at line 2");
}

TEST(PlanIoErrorTest, MalformedDirective) {
  expect_error("cico-plan v1\nE 0 0\nS 99 0 1\n",
               "malformed directive at line 3");
  expect_error("cico-plan v1\nE 0 0\nT 0\n", "malformed directive at line 3");
}

TEST(PlanIoErrorTest, MalformedBlock) {
  expect_error("cico-plan v1\nE 0 0\nW zz\n", "malformed block at line 3");
}

TEST(PlanIoErrorTest, UnknownTag) {
  expect_error("cico-plan v1\nE 0 0\nQ 1\n", "unknown tag at line 3");
}

TEST(PlanIoErrorTest, OffendingTextIsQuoted) {
  expect_error("cico-plan v1\nE 0 0\nQ 1\n", "'Q 1'");
}

TEST(PlanIoErrorTest, TruncationMidLineIsCaught) {
  // A plan cut off mid-record (e.g. a partial download) must not load.
  expect_error("cico-plan v1\nE 0 0\nS 1 0\n", "line 3");
}

TEST(PlanIoErrorTest, GoodPlanRoundTrips) {
  DirectivePlan plan;
  auto& d = plan.at(1, 2);
  d.at_start.push_back({DirectiveKind::CheckOutX, BlockRun{3, 5}});
  d.at_end.push_back({DirectiveKind::CheckIn, BlockRun{3, 5}});
  d.fetch_exclusive.insert(7);
  d.checkin_after_write.insert(8);
  std::ostringstream out1;
  save_plan(plan, out1);
  std::istringstream in(out1.str());
  const DirectivePlan loaded = load_plan(in);
  std::ostringstream out2;
  save_plan(loaded, out2);
  EXPECT_EQ(out1.str(), out2.str());
}

}  // namespace
}  // namespace cico::sim
