// Properties of the windowed engine and the cost model: semantic results
// are independent of the quantum, metrics are deterministic for any
// quantum, latencies scale with the cost model, and the directive plan
// machinery composes with everything else.
#include <gtest/gtest.h>

#include "cico/sim/machine.hpp"
#include "cico/sim/shared_array.hpp"

namespace cico::sim {
namespace {

SimConfig cfg(std::uint32_t nodes, Cycle quantum) {
  SimConfig c;
  c.nodes = nodes;
  c.quantum = quantum;
  c.cache.size_bytes = 8192;
  return c;
}

/// A communication-heavy workload with values we can verify.
std::pair<std::vector<double>, Cycle> run_workload(SimConfig c) {
  Machine m(c);
  SharedArray<double> a(m, "A", 128);
  m.run([&](Proc& p) {
    for (int rep = 0; rep < 3; ++rep) {
      for (std::size_t i = p.id(); i < 128; i += p.nprocs()) {
        a.st(p, i, a.ld(p, i, 1) + static_cast<double>(p.id() + 1), 2);
      }
      p.barrier();
      // Rotate ownership: next round each node touches its neighbour's
      // stripe (cross-node traffic every epoch).
      for (std::size_t i = (p.id() + 1) % p.nprocs(); i < 128;
           i += p.nprocs()) {
        (void)a.ld(p, i, 3);
      }
      p.barrier();
    }
  });
  std::vector<double> vals;
  for (std::size_t i = 0; i < 128; ++i) vals.push_back(a.raw(i));
  return {vals, m.exec_time()};
}

class QuantumSweep : public ::testing::TestWithParam<Cycle> {};

TEST_P(QuantumSweep, ValuesIndependentOfQuantum) {
  auto [vals, time] = run_workload(cfg(4, GetParam()));
  auto [ref_vals, ref_time] = run_workload(cfg(4, 120));
  EXPECT_EQ(vals, ref_vals);
  // Times may differ across quanta (different service interleavings), but
  // only mildly: the quantum is a simulation fidelity knob, not a
  // semantic one.
  EXPECT_LT(static_cast<double>(time) / static_cast<double>(ref_time), 1.5);
  EXPECT_GT(static_cast<double>(time) / static_cast<double>(ref_time), 0.66);
}

TEST_P(QuantumSweep, MetricsDeterministicPerQuantum) {
  auto r1 = run_workload(cfg(4, GetParam()));
  auto r2 = run_workload(cfg(4, GetParam()));
  EXPECT_EQ(r1.first, r2.first);
  EXPECT_EQ(r1.second, r2.second);
}

INSTANTIATE_TEST_SUITE_P(Quanta, QuantumSweep,
                         ::testing::Values(40, 120, 400, 2000));

TEST(CostModelScalingTest, RemoteLatencyScalesExecTime) {
  auto run_with = [&](Cycle hop) {
    SimConfig c = cfg(2, 120);
    c.cost.net_hop = hop;
    Machine m(c);
    const Addr a = m.heap().alloc(32 * 64, "A");
    m.run([&](Proc& p) {
      if (p.id() == 0) {
        for (int i = 0; i < 64; ++i) (void)p.ld(a + 32 * i, 8, 1);
      }
    });
    return m.exec_time();
  };
  const Cycle slow = run_with(200);
  const Cycle fast = run_with(20);
  EXPECT_GT(slow, fast);
  // 64 misses, each paying 2 extra hops of (200-20) ~ 23k cycle delta.
  EXPECT_GE(slow - fast, 64 * 2 * (200 - 20) / 2);
}

TEST(CostModelScalingTest, TrapCostOnlyHitsTrappingRuns) {
  auto run_with = [&](Cycle trap, bool contended) {
    SimConfig c = cfg(2, 120);
    c.cost.dir_trap = trap;
    Machine m(c);
    const Addr a = m.heap().alloc(32, "A");
    m.run([&](Proc& p) {
      if (p.id() == 0) p.st(a, 8, 1);
      p.barrier();
      if (p.id() == 1 && contended) p.st(a, 8, 2);  // recall trap
    });
    return m.exec_time();
  };
  EXPECT_GT(run_with(2000, true), run_with(100, true));
  EXPECT_EQ(run_with(2000, false), run_with(100, false));
}

TEST(BigComputeTest, SkewedComputeCrossesManyWindows) {
  // One node computes far past everyone else's windows; the engine must
  // advance windows until it catches up (no deadlock, correct time).
  Machine m(cfg(4, 100));
  m.run([&](Proc& p) {
    if (p.id() == 2) p.compute(100000);
    p.barrier();
  });
  EXPECT_GE(m.exec_time(), 100000u);
}

TEST(ManyNodesTest, ThirtyTwoNodeBarrierStorm) {
  Machine m(cfg(32, 120));
  m.run([&](Proc& p) {
    for (int i = 0; i < 20; ++i) {
      p.compute(10 + p.id());
      p.barrier();
    }
  });
  EXPECT_EQ(m.epochs_completed(), 20u);
  EXPECT_EQ(m.stats().total(Stat::Barriers), 32u * 20);
}

TEST(LockFairnessTest, GrantsFollowVirtualTimeOrder) {
  // Node 1 requests the lock (in virtual time) before node 2; node 1 must
  // get it first even though both requests land in the same boundary.
  Machine m(cfg(3, 1000));
  const Addr l = m.heap().alloc(32, "L");
  SharedArray<double> order(m, "order", 4);
  m.run([&](Proc& p) {
    if (p.id() == 0) {
      p.lock(l);  // t=0: node 0 wins immediately
      p.compute(500);
      p.unlock(l);
    } else if (p.id() == 1) {
      p.compute(10);
      p.lock(l);  // t=10: queued first
      const double pos = order.ld(p, 3, 1);
      order.st(p, 3, pos + 1, 1);
      order.st(p, 1, pos, 2);  // node 1 records its arrival index
      p.unlock(l);
    } else {
      p.compute(200);
      p.lock(l);  // t=200: queued second
      const double pos = order.ld(p, 3, 1);
      order.st(p, 3, pos + 1, 1);
      order.st(p, 2, pos, 2);
      p.unlock(l);
    }
  });
  EXPECT_LT(order.raw(1), order.raw(2));
}

}  // namespace
}  // namespace cico::sim
