// Cross-dispatch equivalence: the kern dispatch level (scalar / AVX2 /
// NEON) is an implementation detail, so a full simulated run must produce
// the SAME deterministic fingerprint -- execution time, epochs, every
// per-node stat counter, network totals, trace text -- under every level
// available on the host, in every engine configuration that exercises the
// kernels (serial, sharded boundary phase, paranoid audits, trace mode,
// directive plans via the full annotate pipeline in minipar_apps_test).
#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "apps/jacobi.hpp"
#include "apps/matmul.hpp"
#include "cico/kern/kernels.hpp"
#include "cico/sim/machine.hpp"
#include "cico/trace/trace.hpp"

namespace cico::sim {
namespace {

std::vector<kern::Level> available_levels() {
  std::vector<kern::Level> ls;
  for (kern::Level l :
       {kern::Level::Scalar, kern::Level::AVX2, kern::Level::NEON}) {
    if (kern::level_available(l)) ls.push_back(l);
  }
  return ls;
}

struct Fingerprint {
  Cycle time = 0;
  EpochId epochs = 0;
  std::vector<std::array<std::uint64_t, kStatCount>> stats;
  std::uint64_t msgs = 0;
  std::string trace_text;

  bool operator==(const Fingerprint& o) const = default;
};

enum class AppKind { MatMul, Jacobi };

Fingerprint run_once(AppKind app, std::uint32_t threads, bool paranoid,
                     bool trace_mode) {
  SimConfig cfg;
  cfg.nodes = app == AppKind::MatMul ? 8 : 16;
  cfg.cache.size_bytes = 4096;
  cfg.cache.assoc = 4;
  cfg.cache.block_bytes = 32;
  cfg.boundary_threads = threads;
  cfg.boundary_batch_min = 2;
  cfg.audit_invariants = paranoid;
  cfg.trace_mode = trace_mode;

  Machine m(cfg);
  trace::TraceWriter w;
  if (trace_mode) m.set_trace_writer(&w);
  std::unique_ptr<apps::App> a;
  if (app == AppKind::MatMul) {
    apps::MatMulConfig c;
    c.n = 24;
    c.prow = 4;
    c.pcol = 2;
    a = std::make_unique<apps::MatMul>(c, /*seed=*/2);
  } else {
    apps::JacobiConfig c;
    c.n = 16;
    c.steps = 2;
    c.p = 4;
    a = std::make_unique<apps::Jacobi>(c, /*seed=*/2);
  }
  a->setup(m, apps::Variant::None);
  m.run([&](Proc& p) { a->body(p); });
  EXPECT_TRUE(a->verify());
  EXPECT_EQ(m.directory().check_invariants(), "");

  Fingerprint f;
  f.time = m.exec_time();
  f.epochs = m.epochs_completed();
  f.stats.resize(cfg.nodes);
  for (NodeId n = 0; n < cfg.nodes; ++n) {
    for (std::size_t i = 0; i < kStatCount; ++i) {
      f.stats[n][i] = m.stats().node(n, static_cast<Stat>(i));
    }
  }
  f.msgs = m.network().total_sent();
  if (trace_mode) {
    std::ostringstream os;
    trace::save_text(w.take(), os);
    f.trace_text = os.str();
  }
  return f;
}

class SimdEquiv : public ::testing::TestWithParam<AppKind> {};

TEST_P(SimdEquiv, RunsAreByteIdenticalUnderEveryDispatchLevel) {
  const auto levels = available_levels();
  ASSERT_FALSE(levels.empty());
  // Scalar is always available and is the reference.
  const kern::Level before = kern::set_level(kern::Level::Scalar);
  const Fingerprint ref = run_once(GetParam(), 1, false, false);
  const Fingerprint ref_par = run_once(GetParam(), 3, true, false);
  const Fingerprint ref_trace = run_once(GetParam(), 1, false, true);
  ASSERT_FALSE(ref_trace.trace_text.empty());
  for (kern::Level l : levels) {
    SCOPED_TRACE(kern::level_name(l));
    kern::set_level(l);
    EXPECT_EQ(run_once(GetParam(), 1, false, false), ref);
    EXPECT_EQ(run_once(GetParam(), 3, true, false), ref_par);
    EXPECT_EQ(run_once(GetParam(), 1, false, true), ref_trace);
  }
  kern::set_level(before);
}

INSTANTIATE_TEST_SUITE_P(Apps, SimdEquiv,
                         ::testing::Values(AppKind::MatMul, AppKind::Jacobi),
                         [](const auto& info) {
                           return info.param == AppKind::MatMul ? "matmul"
                                                                : "jacobi";
                         });

}  // namespace
}  // namespace cico::sim
