// Plan-application mechanics inside the engine: epoch-0 start directives,
// start-of-epoch prefetch runs, check-in runs skipping absent blocks, and
// the DirN protocol running the whole machine end to end.
#include <gtest/gtest.h>

#include "cico/sim/machine.hpp"
#include "cico/sim/shared_array.hpp"

namespace cico::sim {
namespace {

SimConfig small(std::uint32_t nodes) {
  SimConfig c;
  c.nodes = nodes;
  c.cache.size_bytes = 4096;
  return c;
}

TEST(PlanApplyTest, EpochZeroStartCheckoutsHappenBeforeFirstAccess) {
  Machine m(small(1));
  const Addr a = m.heap().alloc(128, "A");  // 4 blocks
  const Block b0 = m.config().cache.block_of(a);
  DirectivePlan plan;
  plan.at(0, 0).at_start.push_back(
      {DirectiveKind::CheckOutX, BlockRun{b0, b0 + 3}});
  m.set_plan(&plan);
  m.run([&](Proc& p) {
    for (int i = 0; i < 4; ++i) p.st(a + 32 * i, 8, 1);  // all hits
  });
  EXPECT_EQ(m.stats().total(Stat::CheckOutX), 4u);
  EXPECT_EQ(m.stats().total(Stat::WriteMisses), 0u);
}

TEST(PlanApplyTest, EpochStartPrefetchRunsOverlapBarrierGap) {
  Machine m(small(2));
  const Addr a = m.heap().alloc(256, "A");
  const Block b0 = m.config().cache.block_of(a);
  DirectivePlan plan;
  plan.at(1, 1).at_start.push_back(
      {DirectiveKind::PrefetchS, BlockRun{b0, b0 + 7}});
  m.set_plan(&plan);
  m.run([&](Proc& p) {
    if (p.id() == 0) {
      for (int i = 0; i < 8; ++i) p.st(a + 32 * i, 8, 1);
      p.check_in(a, 256);
    }
    p.barrier();
    if (p.id() == 1) {
      p.compute(2000);  // time for the prefetches to land
      for (int i = 0; i < 8; ++i) (void)p.ld(a + 32 * i, 8, 2);
    }
  });
  EXPECT_EQ(m.stats().total(Stat::PrefetchIssued), 8u);
  EXPECT_EQ(m.stats().total(Stat::PrefetchUseful), 8u);
  EXPECT_EQ(m.stats().node(1, Stat::ReadMisses), 0u);
}

TEST(PlanApplyTest, EndCheckinSkipsAbsentBlocks) {
  Machine m(small(1));
  const Addr a = m.heap().alloc(256, "A");
  const Block b0 = m.config().cache.block_of(a);
  DirectivePlan plan;
  // Plan says check in 8 blocks at epoch end but the program touched 2.
  plan.at(0, 0).at_end.push_back({DirectiveKind::CheckIn, BlockRun{b0, b0 + 7}});
  m.set_plan(&plan);
  m.run([&](Proc& p) {
    p.st(a, 8, 1);
    p.st(a + 32, 8, 1);
    p.barrier();
  });
  EXPECT_EQ(m.stats().total(Stat::CheckIns), 2u);  // only resident lines
  EXPECT_EQ(m.directory().check_invariants(), "");
}

TEST(PlanApplyTest, PlanForOtherEpochsDoesNothing) {
  Machine m(small(1));
  const Addr a = m.heap().alloc(32, "A");
  DirectivePlan plan;
  plan.at(0, 5).fetch_exclusive.insert(m.config().cache.block_of(a));
  m.set_plan(&plan);
  m.run([&](Proc& p) {
    (void)p.ld(a, 8, 1);
    p.st(a, 8, 2);
  });
  // Epoch 5 never happens; the read stays a GetS and the store faults.
  EXPECT_EQ(m.stats().total(Stat::WriteFaults), 1u);
  EXPECT_EQ(m.stats().total(Stat::CheckOutX), 0u);
}

TEST(DirNMachineTest, EndToEndNoTrapsAndCorrectValues) {
  SimConfig c = small(4);
  c.protocol = ProtocolKind::DirNFullMap;
  Machine m(c);
  SharedArray<double> a(m, "A", 64);
  m.run([&](Proc& p) {
    for (std::size_t i = p.id(); i < 64; i += 4) {
      a.st(p, i, static_cast<double>(i), 1);
    }
    p.barrier();
    // Everyone reads everything: forwarding + sharing, all hardware.
    double s = 0;
    for (std::size_t i = 0; i < 64; ++i) s += a.ld(p, i, 2);
    p.compute(static_cast<Cycle>(s) % 3 + 1);
  });
  EXPECT_EQ(m.stats().total(Stat::Traps), 0u);
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_DOUBLE_EQ(a.raw(i), static_cast<double>(i));
  }
  EXPECT_EQ(m.directory().check_invariants(), "");
  EXPECT_STREQ(m.directory().name(), "dirn-fullmap");
}

TEST(DirNMachineTest, DeterministicToo) {
  auto run = [] {
    SimConfig c = small(4);
    c.protocol = ProtocolKind::DirNFullMap;
    Machine m(c);
    SharedArray<double> a(m, "A", 64);
    m.run([&](Proc& p) {
      for (int rep = 0; rep < 2; ++rep) {
        for (std::size_t i = p.id(); i < 64; i += 4) {
          a.st(p, i, a.ld(p, i, 1) + 1.0, 2);
        }
        p.barrier();
      }
    });
    return std::pair{m.exec_time(), m.stats().total(Stat::Messages)};
  };
  EXPECT_EQ(run(), run());
}

TEST(DirNMachineTest, ContendedWorkloadFasterThanDir1SW) {
  auto run_with = [&](ProtocolKind pk) {
    SimConfig c = small(4);
    c.protocol = pk;
    Machine m(c);
    const Addr a = m.heap().alloc(32, "hot");
    m.run([&](Proc& p) {
      for (int i = 0; i < 10; ++i) {
        p.st(a, 8, 1);  // four nodes fight over one block
        p.compute(50 + 13 * p.id());
      }
    });
    return m.exec_time();
  };
  EXPECT_LT(run_with(ProtocolKind::DirNFullMap),
            run_with(ProtocolKind::Dir1SW));
}

}  // namespace
}  // namespace cico::sim
