#include "cico/mem/cache.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace cico::mem {
namespace {

CacheGeometry small_geo() {
  CacheGeometry g;
  g.size_bytes = 256;  // 8 blocks
  g.assoc = 2;         // 4 sets
  g.block_bytes = 32;
  return g;
}

TEST(CacheGeometryTest, PaperDefaults) {
  CacheGeometry g;
  EXPECT_EQ(g.size_bytes, 256u << 10);
  EXPECT_EQ(g.assoc, 4u);
  EXPECT_EQ(g.block_bytes, 32u);
  EXPECT_EQ(g.num_blocks(), 8192u);
  EXPECT_EQ(g.num_sets(), 2048u);
}

TEST(CacheGeometryTest, BlockArithmetic) {
  CacheGeometry g = small_geo();
  EXPECT_EQ(g.block_of(0), 0u);
  EXPECT_EQ(g.block_of(31), 0u);
  EXPECT_EQ(g.block_of(32), 1u);
  EXPECT_EQ(g.base_of(3), 96u);
  EXPECT_EQ(g.first_block(33), 1u);
  EXPECT_EQ(g.last_block(33, 1), 1u);
  EXPECT_EQ(g.last_block(0, 32), 0u);
  EXPECT_EQ(g.last_block(0, 33), 1u);
  EXPECT_EQ(g.last_block(30, 4), 1u);  // straddles a block boundary
}

TEST(CacheTest, InsertAndLookup) {
  Cache c(small_geo());
  EXPECT_EQ(c.state_of(5), LineState::Invalid);
  EXPECT_FALSE(c.insert(5, LineState::Shared).has_value());
  EXPECT_EQ(c.state_of(5), LineState::Shared);
  EXPECT_TRUE(c.contains(5));
  EXPECT_EQ(c.occupancy(), 1u);
}

TEST(CacheTest, ReinsertUpdatesState) {
  Cache c(small_geo());
  c.insert(5, LineState::Shared);
  EXPECT_FALSE(c.insert(5, LineState::Exclusive).has_value());
  EXPECT_EQ(c.state_of(5), LineState::Exclusive);
  EXPECT_EQ(c.occupancy(), 1u);
}

TEST(CacheTest, SetConflictEvictsLru) {
  // 4 sets: blocks 0, 4, 8 map to set 0; assoc 2.
  Cache c(small_geo());
  c.insert(0, LineState::Shared);
  c.insert(4, LineState::Exclusive);
  auto v = c.insert(8, LineState::Shared);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->block, 0u);  // 0 is LRU
  EXPECT_EQ(v->state, LineState::Shared);
  EXPECT_EQ(c.state_of(0), LineState::Invalid);
  EXPECT_EQ(c.state_of(4), LineState::Exclusive);
  EXPECT_EQ(c.state_of(8), LineState::Shared);
}

TEST(CacheTest, TouchChangesVictim) {
  Cache c(small_geo());
  c.insert(0, LineState::Shared);
  c.insert(4, LineState::Exclusive);
  EXPECT_TRUE(c.touch(0));  // 4 becomes LRU
  auto v = c.insert(8, LineState::Shared);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->block, 4u);
}

TEST(CacheTest, TouchMissingReturnsFalse) {
  Cache c(small_geo());
  EXPECT_FALSE(c.touch(123));
}

TEST(CacheTest, EraseReturnsPriorState) {
  Cache c(small_geo());
  c.insert(7, LineState::Exclusive);
  EXPECT_EQ(c.erase(7), LineState::Exclusive);
  EXPECT_EQ(c.erase(7), LineState::Invalid);
  EXPECT_EQ(c.occupancy(), 0u);
}

TEST(CacheTest, SetStateOnMissingFails) {
  Cache c(small_geo());
  EXPECT_FALSE(c.set_state(9, LineState::Shared));
  c.insert(9, LineState::Exclusive);
  EXPECT_TRUE(c.set_state(9, LineState::Shared));
  EXPECT_EQ(c.state_of(9), LineState::Shared);
}

TEST(CacheTest, FlushVisitsAllAndEmpties) {
  Cache c(small_geo());
  c.insert(1, LineState::Shared);
  c.insert(2, LineState::Exclusive);
  c.insert(3, LineState::Shared);
  std::vector<std::pair<Block, LineState>> seen;
  c.flush([&](Block b, LineState s) { seen.emplace_back(b, s); });
  EXPECT_EQ(seen.size(), 3u);
  EXPECT_EQ(c.occupancy(), 0u);
  for (Block b : {1, 2, 3}) EXPECT_EQ(c.state_of(b), LineState::Invalid);
}

TEST(CacheTest, ForEachSeesResidentLines) {
  Cache c(small_geo());
  c.insert(1, LineState::Shared);
  c.insert(6, LineState::Exclusive);
  int count = 0;
  c.for_each([&](Block, LineState) { ++count; });
  EXPECT_EQ(count, 2);
  EXPECT_EQ(c.occupancy(), 2u);
}

/// Property: after any interleaving of inserts, occupancy() equals the
/// number of distinct resident blocks and never exceeds capacity.
TEST(CacheTest, OccupancyBoundedByCapacity) {
  CacheGeometry g = small_geo();
  Cache c(g);
  for (Block b = 0; b < 100; ++b) {
    c.insert(b * 3 % 64, b % 2 ? LineState::Shared : LineState::Exclusive);
    EXPECT_LE(c.occupancy(), g.num_blocks());
    int resident = 0;
    c.for_each([&](Block, LineState) { ++resident; });
    EXPECT_EQ(static_cast<std::size_t>(resident), c.occupancy());
  }
}

/// LRU order within a set is strictly maintained over a long access mix.
TEST(CacheTest, LruOrderProperty) {
  CacheGeometry g = small_geo();
  Cache c(g);
  // Set 0 holds blocks congruent to 0 mod 4.  Insert 0,4; touch in a known
  // pattern; verify eviction order matches least-recent use.
  c.insert(0, LineState::Shared);
  c.insert(4, LineState::Shared);
  c.touch(0);
  c.touch(4);
  c.touch(0);  // LRU is 4
  auto v1 = c.insert(8, LineState::Shared);
  ASSERT_TRUE(v1.has_value());
  EXPECT_EQ(v1->block, 4u);
  // Now resident: 0 (older), 8 (newer); LRU is 0.
  auto v2 = c.insert(12, LineState::Shared);
  ASSERT_TRUE(v2.has_value());
  EXPECT_EQ(v2->block, 0u);
}

}  // namespace
}  // namespace cico::mem
