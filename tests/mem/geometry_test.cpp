#include "cico/mem/geometry.hpp"

#include <gtest/gtest.h>

namespace cico::mem {
namespace {

struct GeoCase {
  std::uint32_t size, assoc, block;
  std::uint32_t want_sets;
};

class GeometrySweep : public ::testing::TestWithParam<GeoCase> {};

TEST_P(GeometrySweep, SetsAndBlocksConsistent) {
  const GeoCase& p = GetParam();
  CacheGeometry g{p.size, p.assoc, p.block};
  EXPECT_EQ(g.num_sets(), p.want_sets);
  EXPECT_EQ(g.num_blocks(), g.num_sets() * g.assoc);
  // Every address maps into a valid set.
  for (Addr a : {Addr{0}, Addr{p.block - 1}, Addr{p.block},
                 Addr{static_cast<Addr>(p.size) * 7 + 13}}) {
    EXPECT_LT(g.set_of(g.block_of(a)), g.num_sets());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, GeometrySweep,
    ::testing::Values(GeoCase{256u << 10, 4, 32, 2048},   // paper config
                      GeoCase{64u << 10, 2, 32, 1024},
                      GeoCase{16u << 10, 1, 64, 256},     // direct-mapped
                      GeoCase{1u << 20, 8, 128, 1024},
                      GeoCase{4096, 4, 32, 32}));

TEST(GeometryTest, RangeCoversBlocks) {
  CacheGeometry g{4096, 4, 32};
  // A 100-byte range starting mid-block covers ceil((16+100)/32) blocks.
  const Addr a = 48;  // block 1, offset 16
  EXPECT_EQ(g.first_block(a), 1u);
  EXPECT_EQ(g.last_block(a, 100), (a + 99) / 32);
}

}  // namespace
}  // namespace cico::mem
