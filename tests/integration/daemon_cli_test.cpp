// End-to-end test of the REAL binaries (paths passed by CTest as argv[1]
// = cachier, argv[2] = cachierd): a daemon-served `cachier --daemon` run
// must print byte-identical stdout to the one-shot CLI, cached or fresh;
// `cachier version` prints the schema identity document; SIGTERM drains
// the daemon cleanly (exit 0, socket removed).
#include <gtest/gtest.h>

#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>

namespace {

using namespace std::chrono_literals;

std::string g_cachier;   // argv[1]
std::string g_cachierd;  // argv[2]

struct CmdResult {
  int exit_code = -1;
  std::string output;
};

CmdResult run_cmd(const std::string& cmd) {
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return {};
  CmdResult r;
  char buf[4096];
  while (std::fgets(buf, sizeof(buf), pipe) != nullptr) r.output += buf;
  const int status = pclose(pipe);
  if (WIFEXITED(status)) r.exit_code = WEXITSTATUS(status);
  return r;
}

void write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  ASSERT_TRUE(out.is_open()) << path;
  out << text;
}

const char* kProgram =
    "const N = 64;\n"
    "shared real A[N];\n"
    "shared real SUM[2];\n"
    "parallel\n"
    "  A[pid] = pid + 1;\n"
    "  barrier;\n"
    "  lock SUM[1];\n"
    "  SUM[1] = SUM[1] + A[pid];\n"
    "  unlock SUM[1];\n"
    "  barrier;\n"
    "end\n";

/// Runs cachierd in a child process; SIGTERMs and reaps it on teardown.
class DaemonCliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sock_ = ::testing::TempDir() + "daemon_cli_test.sock";
    ::unlink(sock_.c_str());
    write_file(prog_, kProgram);
    pid_ = fork();
    ASSERT_GE(pid_, 0);
    if (pid_ == 0) {
      // Quiet child: the daemon's stderr chatter is not under test.
      FILE* null = std::freopen("/dev/null", "w", stderr);
      (void)null;
      execl(g_cachierd.c_str(), g_cachierd.c_str(), "--socket", sock_.c_str(),
            "--workers", "2", (char*)nullptr);
      _exit(127);
    }
    // The client retries while the daemon binds, so no readiness dance.
  }

  void TearDown() override {
    if (pid_ > 0) {
      kill(pid_, SIGTERM);
      int status = 0;
      waitpid(pid_, &status, 0);
      EXPECT_TRUE(WIFEXITED(status));
      EXPECT_EQ(WEXITSTATUS(status), 0) << "drain must exit 0";
      // Graceful drain removes the socket file.
      struct stat st{};
      EXPECT_NE(stat(sock_.c_str(), &st), 0);
    }
    ::unlink(prog_.c_str());
  }

  std::string sock_;
  pid_t pid_ = -1;
  const std::string prog_ = "daemon_cli_test.mp";
};

TEST_F(DaemonCliTest, DaemonStdoutIsByteIdenticalToOneShot) {
  const std::string q = "'" + g_cachier + "'";
  const CmdResult one_shot =
      run_cmd(q + " run " + prog_ + " -n 4 2>/dev/null");
  ASSERT_EQ(one_shot.exit_code, 0) << one_shot.output;

  const std::string via_daemon =
      q + " run " + prog_ + " -n 4 --daemon '" + sock_ + "' 2>/dev/null";
  const CmdResult fresh = run_cmd(via_daemon);
  ASSERT_EQ(fresh.exit_code, 0) << fresh.output;
  EXPECT_EQ(fresh.output, one_shot.output) << "daemon-served bytes diverged";

  const CmdResult cached = run_cmd(via_daemon);  // second run: cache hit
  ASSERT_EQ(cached.exit_code, 0) << cached.output;
  EXPECT_EQ(cached.output, one_shot.output) << "cache-served bytes diverged";
}

TEST_F(DaemonCliTest, AnnotateViaDaemonMatchesOneShot) {
  const std::string q = "'" + g_cachier + "'";
  const CmdResult one_shot =
      run_cmd(q + " annotate " + prog_ + " -n 4 2>/dev/null");
  ASSERT_EQ(one_shot.exit_code, 0) << one_shot.output;
  const CmdResult via = run_cmd(q + " annotate " + prog_ +
                                " -n 4 --daemon '" + sock_ + "' 2>/dev/null");
  ASSERT_EQ(via.exit_code, 0) << via.output;
  EXPECT_EQ(via.output, one_shot.output);
}

TEST_F(DaemonCliTest, LintExitCodeSurvivesTheProtocol) {
  // The racy program lints with warnings in the one-shot CLI; the daemon
  // path must report the identical exit code and diagnostics text.
  const std::string q = "'" + g_cachier + "'";
  const CmdResult one_shot = run_cmd(q + " lint " + prog_ + " 2>/dev/null");
  const CmdResult via = run_cmd(q + " lint " + prog_ + " --daemon '" + sock_ +
                                "' 2>/dev/null");
  EXPECT_EQ(via.exit_code, one_shot.exit_code);
  EXPECT_EQ(via.output, one_shot.output);
}

TEST_F(DaemonCliTest, ParseErrorViaDaemonIsExitTwo) {
  write_file("daemon_cli_bad.mp", "this is @@ not minipar $$\n");
  const CmdResult r =
      run_cmd("'" + g_cachier + "' run daemon_cli_bad.mp --daemon '" + sock_ +
              "' 2>&1");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("cachier: error:"), std::string::npos) << r.output;
  ::unlink("daemon_cli_bad.mp");
}

TEST(DaemonCliStandalone, VersionPrintsSchemaDocument) {
  const CmdResult r = run_cmd("'" + g_cachier + "' version");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("\"tool\": \"cachier\""), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("\"daemon_protocol\""), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("\"report\""), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("\"lint\""), std::string::npos) << r.output;
}

TEST(DaemonCliStandalone, DaemonFlagRejectsLocalOnlySideChannels) {
  write_file("daemon_cli_flags.mp", kProgram);
  const CmdResult r =
      run_cmd("'" + g_cachier +
              "' run daemon_cli_flags.mp --daemon /tmp/x.sock "
              "--events ev.json 2>&1");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("usage:"), std::string::npos) << r.output;
  ::unlink("daemon_cli_flags.mp");
}

}  // namespace

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: daemon_cli_test <cachier-path> <cachierd-path>\n");
    return 2;
  }
  g_cachier = argv[1];
  g_cachierd = argv[2];
  return RUN_ALL_TESTS();
}
