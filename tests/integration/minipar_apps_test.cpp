// End-to-end MiniPar pipeline on the example programs shipped in
// examples/minipar/: parse -> trace -> annotate -> unparse -> reparse ->
// run, checking semantics preservation and improvement on each.
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "cico/lang/interp.hpp"
#include "cico/lang/parser.hpp"
#include "cico/lang/unparse.hpp"
#include "cico/srcann/annotator.hpp"

namespace cico::srcann {
namespace {

namespace lang = cico::lang;

// The programs are embedded (tests must not depend on run directory).
constexpr const char* kJacobi = R"(
const N = 16;
const P = 2;
const T = 4;
shared real U[N, N];
shared real V[N, N];
parallel
  if pid == 0 then
    for i = 0 to N - 1 do
      for j = 0 to N - 1 do
        U[i, j] = (i * 31 + j * 17) % 10;
        V[i, j] = U[i, j];
      od
    od
  fi
  barrier;
  private bs = N / P;
  private pi = (pid - pid % P) / P;
  private pj = pid % P;
  private li = max(pi * bs, 1);
  private ui = min(pi * bs + bs - 1, N - 2);
  private lj = max(pj * bs, 1);
  private uj = min(pj * bs + bs - 1, N - 2);
  for t = 1 to T do
    for i = li to ui do
      for j = lj to uj do
        V[i, j] = 0.25 * (U[i - 1, j] + U[i + 1, j] + U[i, j - 1] + U[i, j + 1]);
      od
    od
    barrier;
    for i = li to ui do
      for j = lj to uj do
        U[i, j] = V[i, j];
      od
    od
    barrier;
  od
end
)";

struct RunOut {
  std::vector<double> u;
  Cycle time = 0;
  Cycle traps = 0;
};

RunOut run(const lang::Program& prog, std::uint32_t nodes) {
  sim::SimConfig cfg;
  cfg.nodes = nodes;
  sim::Machine m(cfg);
  lang::LoadedProgram lp(prog, m);
  m.run([&](sim::Proc& p) { lp.run_node(p); });
  RunOut out;
  const auto [d0, d1] = lp.array_dims("U");
  for (std::size_t i = 0; i < d0; ++i) {
    for (std::size_t j = 0; j < d1; ++j) out.u.push_back(lp.value("U", i, j));
  }
  out.time = m.exec_time();
  out.traps = m.stats().total(Stat::Traps);
  return out;
}

class JacobiPipeline
    : public ::testing::TestWithParam<cachier::Mode> {};

TEST_P(JacobiPipeline, AnnotatedJacobiIsCorrectAndFaster) {
  lang::Program prog = lang::parse(kJacobi);

  // Trace.
  sim::SimConfig cfg;
  cfg.nodes = 4;
  cfg.trace_mode = true;
  sim::Machine tm(cfg);
  trace::TraceWriter w;
  tm.set_trace_writer(&w);
  lang::LoadedProgram lp(prog, tm);
  w.set_labels(tm.heap().trace_labels());
  tm.run([&](sim::Proc& p) { lp.run_node(p); });
  trace::Trace t = w.take();

  // Annotate + full unparse/reparse round trip.
  AnnotateResult res = annotate(prog, t, lp, cfg.cache, {.mode = GetParam()});
  EXPECT_GT(res.inserted, 0u);
  lang::Program annotated = lang::parse(lang::unparse(res.program));

  const RunOut plain = run(prog, 4);
  const RunOut anno = run(annotated, 4);
  EXPECT_EQ(plain.u, anno.u);          // semantics preserved
  EXPECT_LE(anno.traps, plain.traps);  // annotations remove traps
  if (GetParam() == cachier::Mode::Performance) {
    EXPECT_LT(anno.time, plain.time);
  }
}

INSTANTIATE_TEST_SUITE_P(Modes, JacobiPipeline,
                         ::testing::Values(cachier::Mode::Performance,
                                           cachier::Mode::Programmer),
                         [](const auto& info) {
                           return std::string(cachier::mode_name(info.param));
                         });

TEST(MiniparFilesTest, ShippedExamplesParse) {
  // The example files must stay in sync with the grammar; they are also
  // embedded in examples and the CLI docs.  (Parsed from the repository
  // when available.)
  for (const char* path : {"examples/minipar/jacobi.mp",
                           "examples/minipar/reduce.mp",
                           "examples/minipar/matmul44.mp"}) {
    std::ifstream in(path);
    if (!in) {
      in.open(std::string("../") + path);
    }
    if (!in) GTEST_SKIP() << "example files not reachable from cwd";
    std::stringstream ss;
    ss << in.rdbuf();
    EXPECT_NO_THROW((void)lang::parse(ss.str())) << path;
  }
}

}  // namespace
}  // namespace cico::srcann
