// Exit-code contract of the cachier CLI, exercised end-to-end on the real
// binary (path passed as argv[1] by CTest): usage errors exit 1; every
// program error -- MiniPar parse failures, malformed plans, bad fault
// specs, exhausted retry budgets -- exits 2 with a one-line
// `cachier: error: ...` on stderr, never an unhandled terminate.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <sys/wait.h>

namespace {

std::string g_cachier;  // set in main() from argv[1]

struct CmdResult {
  int exit_code = -1;
  std::string output;  // stdout + stderr combined
};

CmdResult run_cli(const std::string& args) {
  const std::string cmd = "'" + g_cachier + "' " + args + " 2>&1";
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return {};
  CmdResult r;
  char buf[4096];
  while (std::fgets(buf, sizeof(buf), pipe) != nullptr) r.output += buf;
  const int status = pclose(pipe);
  if (WIFEXITED(status)) r.exit_code = WEXITSTATUS(status);
  return r;
}

void write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  ASSERT_TRUE(out.is_open()) << path;
  out << text;
}

/// A minimal valid MiniPar program (each node stores one element).
const char* kGoodProgram =
    "const N = 64;\n"
    "shared real A[N];\n"
    "parallel\n"
    "  A[pid] = pid + 1;\n"
    "  barrier;\n"
    "end\n";

class CliErrorsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    write_file(prog_, kGoodProgram);
  }
  const std::string prog_ = "cli_errors_good.mp";
};

TEST_F(CliErrorsTest, NoArgumentsIsUsageExit1) {
  const CmdResult r = run_cli("");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("usage:"), std::string::npos) << r.output;
}

TEST_F(CliErrorsTest, UnknownCommandIsUsageExit1) {
  const CmdResult r = run_cli("frobnicate " + prog_);
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("usage:"), std::string::npos) << r.output;
}

TEST_F(CliErrorsTest, GarbageSourceIsExit2) {
  write_file("cli_errors_garbage.mp", "this is @@ not minipar $$\n");
  const CmdResult r = run_cli("run cli_errors_garbage.mp -n 4");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("cachier: error:"), std::string::npos) << r.output;
}

TEST_F(CliErrorsTest, MissingFileIsExit2) {
  const CmdResult r = run_cli("run cli_errors_does_not_exist.mp -n 4");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("cachier: error:"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("cannot open"), std::string::npos) << r.output;
}

TEST_F(CliErrorsTest, TruncatedPlanNamesTheBadLine) {
  write_file("cli_errors_bad.plan", "cico-plan v1\nE 0 0\nS 1 0\n");
  const CmdResult r =
      run_cli("run " + prog_ + " -n 4 --plan cli_errors_bad.plan");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("cachier: error: plan:"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("line 3"), std::string::npos) << r.output;
}

TEST_F(CliErrorsTest, BadFaultSpecIsExit2) {
  const CmdResult r = run_cli("run " + prog_ + " -n 4 --faults drop=2.0");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("cachier: error: faults:"), std::string::npos)
      << r.output;
}

TEST_F(CliErrorsTest, ExhaustedRetryBudgetIsExit2) {
  const CmdResult r =
      run_cli("run " + prog_ + " -n 4 --faults drop=1.0,retries=2");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("retry budget"), std::string::npos) << r.output;
}

// --- strict numeric flag parsing (std::atoi used to accept all of these) --

TEST_F(CliErrorsTest, NonNumericNodeCountIsExit2) {
  const CmdResult r = run_cli("run " + prog_ + " -n foo");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("cachier: error: invalid -n"), std::string::npos)
      << r.output;
}

TEST_F(CliErrorsTest, TrailingGarbageNodeCountIsExit2) {
  // atoi("4x") == 4: the old parser ran this on 4 nodes without a word.
  const CmdResult r = run_cli("run " + prog_ + " -n 4x");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("'4x'"), std::string::npos) << r.output;
}

TEST_F(CliErrorsTest, NegativeNodeCountIsExit2) {
  // atoi("-4") cast to uint32 used to request ~4 billion nodes.
  const CmdResult r = run_cli("run " + prog_ + " -n -4");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("cachier: error:"), std::string::npos) << r.output;
}

TEST_F(CliErrorsTest, OverflowingNodeCountIsExit2) {
  const CmdResult r = run_cli("run " + prog_ + " -n 99999999999999999999");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("out of range"), std::string::npos) << r.output;
}

TEST_F(CliErrorsTest, ZeroNodeCountIsStillUsageExit1) {
  // Structurally valid number, semantically useless: usage error contract.
  const CmdResult r = run_cli("run " + prog_ + " -n 0");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("usage:"), std::string::npos) << r.output;
}

TEST_F(CliErrorsTest, BadBoundaryThreadsIsExit2) {
  const CmdResult r = run_cli("run " + prog_ + " --boundary-threads x");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("--boundary-threads"), std::string::npos)
      << r.output;
}

TEST_F(CliErrorsTest, BadCampaignsIsExit2) {
  const CmdResult r = run_cli("soak --campaigns many");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("--campaigns"), std::string::npos) << r.output;
}

TEST_F(CliErrorsTest, BadSeedIsExit2) {
  const CmdResult r = run_cli("soak --seed 12three");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("--seed"), std::string::npos) << r.output;
}

// --- trace --load validation ----------------------------------------------

TEST_F(CliErrorsTest, TraceLoadRoundTripsExit0) {
  const CmdResult dump = run_cli("trace " + prog_ + " -n 4");
  ASSERT_EQ(dump.exit_code, 0) << dump.output;
  // stdout began with the trace header; stderr was empty on success.
  write_file("cli_errors_trace.txt", dump.output);
  const CmdResult r = run_cli("trace --load cli_errors_trace.txt");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_EQ(r.output, dump.output);
}

TEST_F(CliErrorsTest, TraceLoadBadKindNamesTheLine) {
  write_file("cli_errors_trace_bad.txt",
             "cico-trace v1\nM 0 0 7 4096 8 1\n");
  const CmdResult r = run_cli("trace --load cli_errors_trace_bad.txt");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("cachier: error: trace: line 2"), std::string::npos)
      << r.output;
}

TEST_F(CliErrorsTest, TraceLoadTrailingJunkIsExit2) {
  write_file("cli_errors_trace_junk.txt",
             "cico-trace v1\nB 0 0 1 555 junk\n");
  const CmdResult r = run_cli("trace --load cli_errors_trace_junk.txt");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("line 2"), std::string::npos) << r.output;
}

TEST_F(CliErrorsTest, TraceLoadMissingFileIsExit2) {
  const CmdResult r = run_cli("trace --load cli_errors_no_such_trace.txt");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("cannot open"), std::string::npos) << r.output;
}

// --- observability flags ---------------------------------------------------

TEST_F(CliErrorsTest, ReportToUnwritablePathIsExit2) {
  const CmdResult r =
      run_cli("run " + prog_ + " -n 4 --report no_such_dir/out.json");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("cannot write"), std::string::npos) << r.output;
}

TEST_F(CliErrorsTest, StreamEpochsWithoutReportIsUsageExit1) {
  const CmdResult r = run_cli("run " + prog_ + " -n 4 --stream-epochs");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("usage:"), std::string::npos) << r.output;
}

TEST_F(CliErrorsTest, StreamEpochsWritesIdenticalReportAndCleansSidecar) {
  ASSERT_EQ(run_cli("run " + prog_ + " -n 4 --report cli_errors_buf.json")
                .exit_code,
            0);
  ASSERT_EQ(run_cli("run " + prog_ +
                    " -n 4 --report cli_errors_stream.json --stream-epochs")
                .exit_code,
            0);
  std::ifstream a("cli_errors_buf.json");
  std::ifstream b("cli_errors_stream.json");
  const std::string buf((std::istreambuf_iterator<char>(a)),
                        std::istreambuf_iterator<char>());
  const std::string streamed((std::istreambuf_iterator<char>(b)),
                             std::istreambuf_iterator<char>());
  ASSERT_FALSE(buf.empty());
  EXPECT_EQ(streamed, buf);
  std::ifstream sidecar("cli_errors_stream.json.epochs0");
  EXPECT_FALSE(sidecar.good()) << "sidecar left behind";
}

// --- diff: 0/1/2 outcome contract on the real binary -----------------------

class CliDiffTest : public CliErrorsTest {
 protected:
  void SetUp() override {
    CliErrorsTest::SetUp();
    ASSERT_EQ(run_cli("run " + prog_ + " -n 4 --report cli_diff_base.json")
                  .exit_code,
              0);
  }
};

TEST_F(CliDiffTest, IdenticalReportsExit0) {
  const CmdResult r = run_cli("diff cli_diff_base.json cli_diff_base.json");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("identical"), std::string::npos) << r.output;
}

TEST_F(CliDiffTest, DivergentReportExits2AndTolerancesDowngradeTo1) {
  ASSERT_EQ(run_cli("run " + prog_ + " -n 8 --report cli_diff_cand.json")
                .exit_code,
            0);
  const CmdResult reg = run_cli("diff cli_diff_base.json cli_diff_cand.json");
  EXPECT_EQ(reg.exit_code, 2) << reg.output;
  EXPECT_NE(reg.output.find("REGRESSION"), std::string::npos) << reg.output;

  // Ignoring everything but one numeric counter, with a generous bound,
  // leaves only tolerated divergences: exit 1.  (totals.barriers scales
  // with the node count, so it is guaranteed to diverge here.)
  write_file("cli_diff_rules.toml",
             "[tolerance]\n"
             "runs.*.totals.barriers = \"rel=10000%\"\n");
  const CmdResult tol = run_cli(
      "diff cli_diff_base.json cli_diff_cand.json "
      "--tolerances cli_diff_rules.toml --tol '**=ignore' "
      "--tol 'runs.*.totals.barriers=rel=10000%'");
  EXPECT_EQ(tol.exit_code, 1) << tol.output;
  EXPECT_NE(tol.output.find("(exit 1)"), std::string::npos) << tol.output;
}

TEST_F(CliDiffTest, MalformedJsonNamesFileAndLineExit2) {
  write_file("cli_diff_bad.json", "{\n  \"schema_version\": ]\n}\n");
  const CmdResult r = run_cli("diff cli_diff_base.json cli_diff_bad.json");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("cachier: error: cli_diff_bad.json"),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("line 2"), std::string::npos) << r.output;
}

TEST_F(CliDiffTest, UnsupportedSchemaVersionIsExit2) {
  write_file("cli_diff_v99.json", "{\n  \"schema_version\": 99\n}\n");
  const CmdResult r = run_cli("diff cli_diff_base.json cli_diff_v99.json");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("unsupported schema_version 99"), std::string::npos)
      << r.output;
}

TEST_F(CliDiffTest, BadToleranceFileNamesTheLineExit2) {
  write_file("cli_diff_bad_rules.toml", "a = \"abs=1\"\nnot a rule\n");
  const CmdResult r = run_cli(
      "diff cli_diff_base.json cli_diff_base.json "
      "--tolerances cli_diff_bad_rules.toml");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("cli_diff_bad_rules.toml"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("line 2"), std::string::npos) << r.output;
}

TEST_F(CliDiffTest, MissingCandidateArgumentIsUsageExit1) {
  const CmdResult r = run_cli("diff cli_diff_base.json");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("usage:"), std::string::npos) << r.output;
}

TEST_F(CliDiffTest, SummaryIsOneLinePerVerdict) {
  const CmdResult same =
      run_cli("diff cli_diff_base.json cli_diff_base.json --summary");
  EXPECT_EQ(same.exit_code, 0) << same.output;
  EXPECT_EQ(same.output, "diff: IDENTICAL divergences=0 tolerated=0 "
                         "regressions=0 exit=0\n");

  ASSERT_EQ(run_cli("run " + prog_ + " -n 8 --report cli_diff_sum_cand.json")
                .exit_code,
            0);
  const CmdResult reg = run_cli(
      "diff cli_diff_base.json cli_diff_sum_cand.json --summary");
  EXPECT_EQ(reg.exit_code, 2) << reg.output;
  EXPECT_EQ(reg.output.compare(0, 17, "diff: REGRESSION "), 0) << reg.output;
  // Exactly one line, ending in the exit code.
  EXPECT_EQ(reg.output.find('\n'), reg.output.size() - 1) << reg.output;
  EXPECT_NE(reg.output.find("exit=2"), std::string::npos) << reg.output;
}

// --- lint: 0/1/2 severity contract and --json sidecar -----------------------

class CliLintTest : public CliErrorsTest {
 protected:
  // kGoodProgram has shared writes but no directives at all, so no array is
  // CICO-managed and the linter stays silent.
  const std::string warn_ = "cli_lint_warn.mp";
  const std::string err_ = "cli_lint_err.mp";
  void SetUp() override {
    CliErrorsTest::SetUp();
    // Checked out, used, never checked in anywhere: CICO006 warning.
    write_file(warn_,
               "shared real A[8];\n"
               "parallel\n"
               "  check_out_X A[0:7];\n"
               "  A[0] = 1;\n"
               "  barrier;\n"
               "end\n");
    // Write under a shared (read-only) checkout: CICO003 error.
    write_file(err_,
               "shared real A[8];\n"
               "parallel\n"
               "  check_out_S A[0:7];\n"
               "  A[0] = 1;\n"
               "  check_in A[0:7];\n"
               "  barrier;\n"
               "end\n");
  }
};

TEST_F(CliLintTest, CleanProgramIsExit0) {
  const CmdResult r = run_cli("lint " + prog_);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("0 error(s), 0 warning(s)"), std::string::npos)
      << r.output;
}

TEST_F(CliLintTest, WarningsAreExit1) {
  const CmdResult r = run_cli("lint " + warn_);
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("[CICO006]"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find(warn_ + ":3:3: warning:"), std::string::npos)
      << r.output;
}

TEST_F(CliLintTest, ErrorsAreExit2) {
  const CmdResult r = run_cli("lint " + err_);
  EXPECT_EQ(r.exit_code, 2) << r.output;
  EXPECT_NE(r.output.find("[CICO003]"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("error:"), std::string::npos) << r.output;
}

TEST_F(CliLintTest, JsonSidecarIsWrittenAndDiffable) {
  ASSERT_EQ(run_cli("lint " + warn_ + " --json cli_lint_a.json").exit_code, 1);
  std::ifstream in("cli_lint_a.json");
  const std::string doc((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
  EXPECT_NE(doc.find("\"generator\": \"cachier-lint\""), std::string::npos)
      << doc;
  EXPECT_NE(doc.find("\"rule\": \"CICO006\""), std::string::npos) << doc;
  // The diagnostics document rides the same differ as run reports.
  const CmdResult same =
      run_cli("diff cli_lint_a.json cli_lint_a.json --summary");
  EXPECT_EQ(same.exit_code, 0) << same.output;
  ASSERT_EQ(run_cli("lint " + err_ + " --json cli_lint_b.json").exit_code, 2);
  const CmdResult reg = run_cli("diff cli_lint_a.json cli_lint_b.json");
  EXPECT_EQ(reg.exit_code, 2) << reg.output;
}

TEST_F(CliLintTest, MissingFileIsExit2) {
  const CmdResult r = run_cli("lint cli_lint_no_such_file.mp");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("cannot open"), std::string::npos) << r.output;
}

TEST_F(CliLintTest, JsonToUnwritablePathIsExit2) {
  const CmdResult r =
      run_cli("lint " + warn_ + " --json no_such_dir/diag.json");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("cannot write"), std::string::npos) << r.output;
}

TEST_F(CliLintTest, AnnotateSelfLintReportsDefectsOnItsOutput) {
  // annotate | lint is the supported pipeline: the annotated program must
  // never lint worse than warnings (exit 0 or 1, never 2).
  ASSERT_EQ(
      run_cli("annotate " + prog_ + " -n 4 2>/dev/null > cli_lint_ann.mp")
          .exit_code,
      0);
  const CmdResult r = run_cli("lint cli_lint_ann.mp");
  EXPECT_NE(r.exit_code, 2) << r.output;
}

// --- lint --fix and annotate --static ---------------------------------------

namespace {
std::string slurp_file(const std::string& path) {
  std::ifstream in(path);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}
}  // namespace

TEST_F(CliLintTest, FixOnCleanProgramIsIdentityExit0) {
  const CmdResult r = run_cli("lint --fix " + prog_);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("0 fixes"), std::string::npos) << r.output;
}

TEST_F(CliLintTest, FixRepairsFindingsAndIsIdempotent) {
  // Both hand defects (a CICO006 leak and a CICO003 write-under-S) have
  // machine fixes, so --fix must reach exit 0 on each.
  for (const std::string& src : {warn_, err_}) {
    EXPECT_EQ(run_cli("lint --fix " + src).exit_code, 0) << src;
  }
  // Fixed output lints clean and re-fixes to the same bytes.  The pipe
  // through cat keeps the fix log (stderr) out of the emitted program.
  run_cli("lint --fix " + warn_ + " 2>/dev/null | cat > cli_fix1.mp");
  EXPECT_EQ(run_cli("lint cli_fix1.mp").exit_code, 0);
  run_cli("lint --fix cli_fix1.mp 2>/dev/null | cat > cli_fix2.mp");
  const std::string pass1 = slurp_file("cli_fix1.mp");
  const std::string pass2 = slurp_file("cli_fix2.mp");
  ASSERT_FALSE(pass1.empty());
  EXPECT_EQ(pass1, pass2) << "lint --fix must be idempotent";
  const CmdResult again = run_cli("lint --fix cli_fix1.mp");
  EXPECT_EQ(again.exit_code, 0) << again.output;
  EXPECT_NE(again.output.find("0 fixes"), std::string::npos) << again.output;
}

TEST_F(CliErrorsTest, StaticAnnotateOutputLintsCleanExit0) {
  ASSERT_EQ(run_cli("annotate --static " + prog_ +
                    " -n 4 2>/dev/null | cat > cli_static_ann.mp")
                .exit_code,
            0);
  EXPECT_EQ(run_cli("annotate --static " + prog_ + " -n 4").exit_code, 0);
  const CmdResult r = run_cli("lint cli_static_ann.mp");
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST_F(CliErrorsTest, StaticAnnotateRejectsNodeCountBeyondMaskWidth) {
  const CmdResult r = run_cli("annotate --static " + prog_ + " -n 65");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("cachier: error:"), std::string::npos) << r.output;
}

TEST_F(CliErrorsTest, StaticFlagOutsideAnnotateIsUsageExit1) {
  const CmdResult r = run_cli("run " + prog_ + " --static -n 4");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("usage:"), std::string::npos) << r.output;
}

TEST_F(CliErrorsTest, FixFlagOutsideLintIsUsageExit1) {
  const CmdResult r = run_cli("annotate " + prog_ + " --fix -n 4");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("usage:"), std::string::npos) << r.output;
}

TEST_F(CliErrorsTest, PrefetchWithoutStaticIsUsageExit1) {
  const CmdResult r = run_cli("annotate " + prog_ + " --prefetch -n 4");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("usage:"), std::string::npos) << r.output;
}

TEST_F(CliErrorsTest, CleanRunIsExit0) {
  const CmdResult r = run_cli("run " + prog_ + " -n 4");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("execution time"), std::string::npos) << r.output;
}

TEST_F(CliErrorsTest, FaultedRunPrintsFaultCounters) {
  const CmdResult r =
      run_cli("run " + prog_ + " -n 4 --paranoid --faults drop=0.05,retries=0");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("msg_dropped"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("retries"), std::string::npos) << r.output;
}

// --- store / sync: positional grammar and error contract --------------------

class CliStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
    std::filesystem::remove_all(dir2_, ec);
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
    std::filesystem::remove_all(dir2_, ec);
  }
  const std::string dir_ = "cli_errors_store1";
  const std::string dir2_ = "cli_errors_store2";
};

TEST_F(CliStoreTest, MissingPositionalsAreUsageExit1) {
  for (const char* args : {"store", "store put", "store put somedir",
                           "store ls", "store gc", "sync", "sync onlysrc"}) {
    const CmdResult r = run_cli(args);
    EXPECT_EQ(r.exit_code, 1) << args << "\n" << r.output;
    EXPECT_NE(r.output.find("usage:"), std::string::npos) << r.output;
  }
}

TEST_F(CliStoreTest, UnknownSubcommandIsUsageExit1) {
  const CmdResult r = run_cli("store frobnicate " + dir_);
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("usage:"), std::string::npos) << r.output;
}

TEST_F(CliStoreTest, GetFromNonStoreIsExit2) {
  const CmdResult r = run_cli("store get " + dir_ + " nothing");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("cachier: error: store:"), std::string::npos)
      << r.output;
}

TEST_F(CliStoreTest, MalformedTraceFailsPutWithTraceError) {
  // A file that *claims* to be a trace must go through the strict loader:
  // rejecting it beats storing a corrupt artifact under a trace name.
  write_file("cli_errors_bad_trace.txt", "cico-trace v1\nM 1 2\n");
  const CmdResult r =
      run_cli("store put " + dir_ + " cli_errors_bad_trace.txt");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("cachier: error: trace:"), std::string::npos)
      << r.output;
}

TEST_F(CliStoreTest, PutGetSyncRoundTrip) {
  write_file("cli_errors_blob.bin", std::string(1000, 'z'));
  const CmdResult put =
      run_cli("store put " + dir_ + " cli_errors_blob.bin --name art1");
  EXPECT_EQ(put.exit_code, 0) << put.output;
  EXPECT_NE(put.output.find("store: put art1: kind=blob"), std::string::npos)
      << put.output;

  const CmdResult ls = run_cli("store ls " + dir_);
  EXPECT_EQ(ls.exit_code, 0);
  EXPECT_NE(ls.output.find("art1 kind=blob objects=1 bytes=1000"),
            std::string::npos)
      << ls.output;

  const CmdResult sync = run_cli("sync " + dir_ + " " + dir2_);
  EXPECT_EQ(sync.exit_code, 0) << sync.output;
  EXPECT_NE(sync.output.find("objects copied=1"), std::string::npos)
      << sync.output;

  const CmdResult get =
      run_cli("store get " + dir2_ + " art1 -o cli_errors_blob_out.bin");
  EXPECT_EQ(get.exit_code, 0) << get.output;
  std::ifstream in("cli_errors_blob_out.bin", std::ios::binary);
  const std::string back((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  EXPECT_EQ(back, std::string(1000, 'z'));

  const CmdResult resync = run_cli("sync " + dir_ + " " + dir2_);
  EXPECT_EQ(resync.exit_code, 0);
  EXPECT_NE(resync.output.find("objects copied=0"), std::string::npos)
      << resync.output;
}

}  // namespace

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  if (argc > 1) g_cachier = argv[1];
  if (g_cachier.empty()) {
    std::fprintf(stderr, "usage: cli_errors_test <path-to-cachier>\n");
    return 1;
  }
  return RUN_ALL_TESTS();
}
