// End-to-end tests of the paper pipeline on every benchmark application:
// trace the unannotated program on one input, build the Cachier plan,
// measure on a DIFFERENT input, and check the paper's qualitative claims:
//   * results stay correct (annotations never change semantics),
//   * Cachier-annotated runs are no slower (and for the communication-
//     heavy apps, strictly faster),
//   * software traps go down,
//   * everything is deterministic run-to-run.
#include <gtest/gtest.h>

#include "apps/barnes.hpp"
#include "apps/jacobi.hpp"
#include "apps/matmul.hpp"
#include "apps/mp3d.hpp"
#include "apps/ocean.hpp"
#include "apps/runner.hpp"
#include "apps/tomcatv.hpp"

namespace cico::apps {
namespace {

struct AppCase {
  const char* name;
  AppFactory factory;
  std::uint32_t nodes;
  bool expect_strict_win;  // communication-heavy apps must strictly improve
};

std::vector<AppCase> cases() {
  std::vector<AppCase> out;
  {
    MatMulConfig c;
    c.n = 32;
    out.push_back({"matmul",
                   [c](std::uint64_t s) { return std::make_unique<MatMul>(c, s); },
                   32, true});
  }
  {
    OceanConfig c;
    c.n = 64;
    c.iters = 3;
    out.push_back({"ocean",
                   [c](std::uint64_t s) { return std::make_unique<Ocean>(c, s); },
                   32, true});
  }
  {
    TomcatvConfig c;
    c.rows = 64;
    c.cols = 32;
    c.iters = 2;
    out.push_back({"tomcatv",
                   [c](std::uint64_t s) { return std::make_unique<Tomcatv>(c, s); },
                   32, false});
  }
  {
    Mp3dConfig c;
    c.molecules = 1024;
    c.steps = 3;
    out.push_back({"mp3d",
                   [c](std::uint64_t s) { return std::make_unique<Mp3d>(c, s); },
                   32, true});
  }
  {
    BarnesConfig c;
    c.bodies = 256;
    c.steps = 2;
    out.push_back({"barnes",
                   [c](std::uint64_t s) { return std::make_unique<Barnes>(c, s); },
                   32, true});
  }
  {
    JacobiConfig c;
    c.n = 32;
    c.steps = 3;
    c.p = 4;
    out.push_back({"jacobi",
                   [c](std::uint64_t s) { return std::make_unique<Jacobi>(c, s); },
                   16, true});
  }
  return out;
}

class AppPipeline : public ::testing::TestWithParam<std::size_t> {};

TEST_P(AppPipeline, CachierImprovesWithoutBreaking) {
  AppCase ac = cases()[GetParam()];
  HarnessConfig hc;
  hc.sim.nodes = ac.nodes;
  Harness h(ac.factory, hc);

  const RunResult none = h.measure(Variant::None);
  ASSERT_TRUE(none.verified) << ac.name;

  sim::DirectivePlan plan =
      h.build_plan({.mode = cachier::Mode::Performance});
  const RunResult with = h.measure(Variant::Cachier, &plan);
  ASSERT_TRUE(with.verified) << ac.name;

  EXPECT_LE(with.stat(Stat::Traps), none.stat(Stat::Traps)) << ac.name;
  if (ac.expect_strict_win) {
    EXPECT_LT(with.time, none.time) << ac.name;
  } else {
    EXPECT_LE(with.time, none.time * 101 / 100) << ac.name;  // ~flat
  }
}

TEST_P(AppPipeline, MeasurementIsDeterministic) {
  AppCase ac = cases()[GetParam()];
  if (std::string(ac.name) == "mp3d") {
    GTEST_SKIP() << "mp3d control flow reads racy cell data (as in SPLASH)";
  }
  HarnessConfig hc;
  hc.sim.nodes = ac.nodes;
  auto run = [&] {
    Harness h(ac.factory, hc);
    RunResult r = h.measure(Variant::None);
    return std::tuple{r.time, r.stat(Stat::Traps), r.stat(Stat::Messages),
                      r.stat(Stat::ReadMisses)};
  };
  EXPECT_EQ(run(), run()) << ac.name;
}

TEST_P(AppPipeline, HandVariantIsCorrectToo) {
  AppCase ac = cases()[GetParam()];
  HarnessConfig hc;
  hc.sim.nodes = ac.nodes;
  Harness h(ac.factory, hc);
  const RunResult hand = h.measure(Variant::Hand);
  EXPECT_TRUE(hand.verified) << ac.name;
  EXPECT_GT(hand.stat(Stat::CheckIns) + hand.stat(Stat::CheckOutX) +
                hand.stat(Stat::CheckOutS),
            0u)
      << ac.name << ": hand variant inserted no directives";
}

INSTANTIATE_TEST_SUITE_P(AllApps, AppPipeline,
                         ::testing::Range<std::size_t>(0, 6),
                         [](const ::testing::TestParamInfo<std::size_t>& i) {
                           return std::string(cases()[i.param].name);
                         });

TEST(HarnessTest, TraceSeedDiffersFromMeasureSeed) {
  // The paper used different inputs for tracing and measurement.
  MatMulConfig c;
  c.n = 32;
  HarnessConfig hc;
  EXPECT_NE(hc.trace_seed, hc.measure_seed);
  Harness h([c](std::uint64_t s) { return std::make_unique<MatMul>(c, s); },
            hc);
  trace::Trace t = h.collect_trace();
  EXPECT_GT(t.misses.size(), 0u);
  EXPECT_GT(t.barriers.size(), 0u);
  EXPECT_FALSE(t.labels.empty());
  EXPECT_FALSE(h.sharing_report().empty());
}

TEST(HarnessTest, Fig6RowFormatting) {
  MatMulConfig c;
  c.n = 32;
  HarnessConfig hc;
  Harness h([c](std::uint64_t s) { return std::make_unique<MatMul>(c, s); },
            hc);
  auto rows = h.run_variants({Variant::None, Variant::Cachier});
  const std::string table = format_fig6_rows(rows);
  EXPECT_NE(table.find("none=1.000"), std::string::npos);
  EXPECT_NE(table.find("cachier="), std::string::npos);
}

}  // namespace
}  // namespace cico::apps
