#include "cico/cachier/epoch_db.hpp"

#include <gtest/gtest.h>

namespace cico::cachier {
namespace {

mem::CacheGeometry geo() {
  mem::CacheGeometry g;
  g.size_bytes = 4096;
  g.assoc = 4;
  g.block_bytes = 32;
  return g;
}

trace::MissRecord rec(EpochId e, NodeId n, trace::MissKind k, Addr a,
                      PcId pc = 1) {
  return trace::MissRecord{e, n, k, a, 8, pc};
}

TEST(EpochDbTest, BasicSets) {
  trace::Trace t;
  t.misses = {
      rec(0, 0, trace::MissKind::ReadMiss, 0x1000),
      rec(0, 0, trace::MissKind::WriteMiss, 0x1020),
      rec(0, 1, trace::MissKind::ReadMiss, 0x1040),
  };
  EpochDB db(t, geo());
  EXPECT_EQ(db.epochs(), 1u);
  EXPECT_EQ(db.nodes(), 2u);
  const auto& d0 = db.at(0, 0);
  EXPECT_TRUE(d0.SR.contains(0x1000 / 32));
  EXPECT_TRUE(d0.SW.contains(0x1020 / 32));
  EXPECT_TRUE(d0.WF.empty());
  EXPECT_EQ(d0.S.size(), 2u);
  const auto& d1 = db.at(0, 1);
  EXPECT_TRUE(d1.SR.contains(0x1040 / 32));
  EXPECT_TRUE(d1.SW.empty());
}

TEST(EpochDbTest, WriteFaultReclassification) {
  // "removing addresses involved in shared write faults from the list of
  //  shared read misses, updating the list of shared write misses to
  //  include addresses involved in shared write faults"
  trace::Trace t;
  t.misses = {
      rec(0, 0, trace::MissKind::ReadMiss, 0x1000),
      rec(0, 0, trace::MissKind::WriteFault, 0x1000),
  };
  EpochDB db(t, geo());
  const auto& d = db.at(0, 0);
  const Block b = 0x1000 / 32;
  EXPECT_TRUE(d.SW.contains(b));
  EXPECT_TRUE(d.WF.contains(b));
  EXPECT_FALSE(d.SR.contains(b));
  EXPECT_TRUE(d.S.contains(b));
}

TEST(EpochDbTest, ReadOfWrittenBlockFoldsIntoSW) {
  // Same block read at one word and written at another: checkout
  // granularity is a block, so SR must not duplicate SW.
  trace::Trace t;
  t.misses = {
      rec(0, 0, trace::MissKind::ReadMiss, 0x1000),
      rec(0, 0, trace::MissKind::WriteMiss, 0x1008),
  };
  EpochDB db(t, geo());
  const auto& d = db.at(0, 0);
  const Block b = 0x1000 / 32;
  EXPECT_TRUE(d.SW.contains(b));
  EXPECT_FALSE(d.SR.contains(b));
}

TEST(EpochDbTest, OutOfRangeLookupsAreEmpty) {
  trace::Trace t;
  t.misses = {rec(0, 0, trace::MissKind::ReadMiss, 0x1000)};
  EpochDB db(t, geo());
  EXPECT_TRUE(db.at(5, 0).empty());
  EXPECT_TRUE(db.at(0, 9).empty());
  EXPECT_TRUE(db.epoch_sw_union(7).empty());
}

TEST(EpochDbTest, SwUnionSpansNodes) {
  trace::Trace t;
  t.misses = {
      rec(0, 0, trace::MissKind::WriteMiss, 0x1000),
      rec(0, 1, trace::MissKind::WriteMiss, 0x1040),
      rec(0, 2, trace::MissKind::ReadMiss, 0x1080),
  };
  EpochDB db(t, geo());
  const auto& u = db.epoch_sw_union(0);
  EXPECT_EQ(u.size(), 2u);
  EXPECT_TRUE(u.contains(0x1000 / 32));
  EXPECT_TRUE(u.contains(0x1040 / 32));
  EXPECT_FALSE(u.contains(0x1080 / 32));
}

TEST(EpochDbTest, EpochsAreIndependent) {
  trace::Trace t;
  t.misses = {
      rec(0, 0, trace::MissKind::WriteMiss, 0x1000),
      rec(1, 0, trace::MissKind::ReadMiss, 0x1000),
  };
  EpochDB db(t, geo());
  EXPECT_TRUE(db.at(0, 0).SW.contains(0x1000 / 32));
  EXPECT_FALSE(db.at(1, 0).SW.contains(0x1000 / 32));
  EXPECT_TRUE(db.at(1, 0).SR.contains(0x1000 / 32));
}

TEST(EpochDbTest, SoleUserBeyond64NodesDoesNotAlias) {
  // Regression for the `1ULL << (n % 64)` accessor masks: node 64 aliased
  // onto node 0, so a block touched by BOTH still looked sole-user (one
  // bit), defeating checkout-exclusive safety on >64-node machines.
  const Block b = 0x1000 / 32;
  trace::Trace t;
  t.misses = {
      rec(0, 0, trace::MissKind::WriteMiss, 0x1000),
      rec(0, 64, trace::MissKind::ReadMiss, 0x1000),
  };
  EpochDB db(t, geo());
  EXPECT_EQ(db.nodes(), 65u);
  EXPECT_FALSE(db.sole_user(0, b, 0));
  EXPECT_FALSE(db.sole_user(0, b, 64));
  EXPECT_EQ(db.users_of(0, b).count(), 2);
  EXPECT_TRUE(db.users_of(0, b).test(0));
  EXPECT_TRUE(db.users_of(0, b).test(64));

  // And a genuinely sole high node reports sole -- for itself only.
  trace::Trace t2;
  t2.misses = {rec(0, 64, trace::MissKind::WriteMiss, 0x1020)};
  EpochDB db2(t2, geo());
  EXPECT_TRUE(db2.sole_user(0, 0x1020 / 32, 64));
  EXPECT_FALSE(db2.sole_user(0, 0x1020 / 32, 0));
}

}  // namespace
}  // namespace cico::cachier
