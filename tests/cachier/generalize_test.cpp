// Region-level generalization of tight annotation sets (the mechanism
// that keeps plans valid across input data sets -- section 4.5).
#include <gtest/gtest.h>

#include "cico/cachier/plan_builder.hpp"

namespace cico::cachier {
namespace {

mem::CacheGeometry geo() {
  mem::CacheGeometry g;
  g.size_bytes = 1u << 20;
  g.assoc = 4;
  g.block_bytes = 32;
  return g;
}

trace::MissRecord rec(EpochId e, NodeId n, trace::MissKind k, Addr a) {
  return trace::MissRecord{e, n, k, a, 8, 1};
}

/// Builds a trace where two nodes race (read-modify-write) on `hot` blocks
/// of a 64-block region starting at 0x10000.
trace::Trace scatter_trace(std::size_t hot, bool regular) {
  trace::Trace t;
  t.labels.push_back(trace::RegionLabel{"cells", 0x10000, 64 * 32, regular});
  for (std::size_t i = 0; i < hot; ++i) {
    const Addr a = 0x10000 + i * 32;
    t.misses.push_back(rec(0, 0, trace::MissKind::ReadMiss, a));
    t.misses.push_back(rec(0, 0, trace::MissKind::WriteFault, a));
    t.misses.push_back(rec(0, 1, trace::MissKind::ReadMiss, a));
    t.misses.push_back(rec(0, 1, trace::MissKind::WriteFault, a));
  }
  return t;
}

std::size_t tight_blocks(const sim::DirectivePlan& plan, NodeId n) {
  const sim::NodeEpochDirectives* ned = plan.find(n, 0);
  if (ned == nullptr) return 0;
  return ned->checkin_after_write.size() + ned->checkin_after_access.size();
}

TEST(GeneralizeTest, IrregularHotRegionCoversWholeRegion) {
  trace::Trace t = scatter_trace(10, /*regular=*/false);
  PlanBuilder pb(t, geo());
  sim::DirectivePlan plan = pb.build({.mode = Mode::Performance});
  // 10 traced blocks, but the whole 64-block irregular region is covered.
  EXPECT_EQ(tight_blocks(plan, 0), 64u);
  const sim::NodeEpochDirectives* ned = plan.find(0, 0);
  ASSERT_NE(ned, nullptr);
  EXPECT_EQ(ned->fetch_exclusive.size(), 64u);
}

TEST(GeneralizeTest, RegularRegionNotGeneralizedBelowThreshold) {
  trace::Trace t = scatter_trace(10, /*regular=*/true);  // 10/64 < 25%
  PlanBuilder pb(t, geo());
  sim::DirectivePlan plan = pb.build({.mode = Mode::Performance});
  EXPECT_EQ(tight_blocks(plan, 0), 10u);
}

TEST(GeneralizeTest, RegularRegionGeneralizedAboveThreshold) {
  trace::Trace t = scatter_trace(40, /*regular=*/true);  // 40/64 >= 25%
  PlanBuilder pb(t, geo());
  sim::DirectivePlan plan = pb.build({.mode = Mode::Performance});
  EXPECT_EQ(tight_blocks(plan, 0), 64u);
}

TEST(GeneralizeTest, SmallIrregularFootprintStaysExact) {
  trace::Trace t = scatter_trace(4, /*regular=*/false);  // < 8 blocks
  PlanBuilder pb(t, geo());
  sim::DirectivePlan plan = pb.build({.mode = Mode::Performance});
  EXPECT_EQ(tight_blocks(plan, 0), 4u);
}

TEST(GeneralizeTest, CanBeDisabled) {
  trace::Trace t = scatter_trace(10, /*regular=*/false);
  PlanBuilder pb(t, geo());
  sim::DirectivePlan plan =
      pb.build({.mode = Mode::Performance, .region_generalize = false});
  EXPECT_EQ(tight_blocks(plan, 0), 10u);
}

TEST(GeneralizeTest, GeneralizedBlocksGoToWriteFiredSet) {
  // Generalized (untraced) blocks must never split a read-modify-write:
  // they belong in checkin_after_write, not checkin_after_access.
  trace::Trace t = scatter_trace(10, /*regular=*/false);
  PlanBuilder pb(t, geo());
  sim::DirectivePlan plan = pb.build({.mode = Mode::Performance});
  const sim::NodeEpochDirectives* ned = plan.find(0, 0);
  ASSERT_NE(ned, nullptr);
  EXPECT_EQ(ned->checkin_after_access.size(), 0u);
  EXPECT_EQ(ned->checkin_after_write.size(), 64u);
}

}  // namespace
}  // namespace cico::cachier
