#include "cico/cachier/plan_builder.hpp"

#include <gtest/gtest.h>

namespace cico::cachier {
namespace {

mem::CacheGeometry geo() {
  mem::CacheGeometry g;
  g.size_bytes = 4096;  // 128 blocks
  g.assoc = 4;
  g.block_bytes = 32;
  return g;
}

trace::MissRecord rec(EpochId e, NodeId n, trace::MissKind k, Addr a) {
  return trace::MissRecord{e, n, k, a, 8, 1};
}

TEST(PlanBuilderTest, ToRunsMergesContiguousBlocks) {
  BlockSet s{1, 2, 3, 7, 9, 10};
  auto runs = PlanBuilder::to_runs(s);
  ASSERT_EQ(runs.size(), 3u);
  EXPECT_EQ(runs[0], (sim::BlockRun{1, 3}));
  EXPECT_EQ(runs[1], (sim::BlockRun{7, 7}));
  EXPECT_EQ(runs[2], (sim::BlockRun{9, 10}));
}

TEST(PlanBuilderTest, ToRunsEmpty) {
  EXPECT_TRUE(PlanBuilder::to_runs({}).empty());
}

TEST(PlanBuilderTest, ProgrammerModeEmitsStartCheckouts) {
  using K = trace::MissKind;
  trace::Trace t;
  t.labels.push_back(trace::RegionLabel{"A", 0x1000, 0x200, true});
  t.misses = {
      rec(0, 0, K::WriteMiss, 0x1000),
      rec(0, 0, K::WriteMiss, 0x1020),
      rec(0, 0, K::ReadMiss, 0x1100),
  };
  PlanBuilder pb(t, geo());
  sim::DirectivePlan plan = pb.build({.mode = Mode::Programmer});
  const sim::NodeEpochDirectives* ned = plan.find(0, 0);
  ASSERT_NE(ned, nullptr);
  // Two contiguous write blocks -> one CheckOutX run; one read block ->
  // one CheckOutS run.
  std::size_t cox = 0, cos = 0;
  for (const auto& pd : ned->at_start) {
    if (pd.kind == sim::DirectiveKind::CheckOutX) cox += pd.run.count();
    if (pd.kind == sim::DirectiveKind::CheckOutS) cos += pd.run.count();
  }
  EXPECT_EQ(cox, 2u);
  EXPECT_EQ(cos, 1u);
  // Last epoch: everything is checked in at the end.
  std::size_t ci = 0;
  for (const auto& pd : ned->at_end) ci += pd.run.count();
  EXPECT_EQ(ci, 3u);
}

TEST(PlanBuilderTest, PerformanceModeHasNoStartCheckouts) {
  using K = trace::MissKind;
  trace::Trace t;
  t.misses = {
      rec(0, 0, K::WriteMiss, 0x1000),
      rec(0, 0, K::ReadMiss, 0x1040),
      rec(0, 0, K::WriteFault, 0x1040),
  };
  PlanBuilder pb(t, geo());
  sim::DirectivePlan plan = pb.build({.mode = Mode::Performance});
  const sim::NodeEpochDirectives* ned = plan.find(0, 0);
  ASSERT_NE(ned, nullptr);
  for (const auto& pd : ned->at_start) {
    EXPECT_NE(pd.kind, sim::DirectiveKind::CheckOutX);
    EXPECT_NE(pd.kind, sim::DirectiveKind::CheckOutS);
  }
  // The read-then-written block fetches exclusive at its first read.
  EXPECT_TRUE(ned->fetch_exclusive.contains(0x1040 / 32));
}

TEST(PlanBuilderTest, RacedBlocksBecomeTightCheckins) {
  using K = trace::MissKind;
  trace::Trace t;
  t.misses = {
      rec(0, 0, K::WriteMiss, 0x1000),
      rec(0, 1, K::WriteMiss, 0x1000),
  };
  PlanBuilder pb(t, geo());
  sim::DirectivePlan plan = pb.build({.mode = Mode::Performance});
  for (NodeId n : {0u, 1u}) {
    const sim::NodeEpochDirectives* ned = plan.find(n, 0);
    ASSERT_NE(ned, nullptr);
    // Both nodes WRITE the raced block: check-in placed after the write.
    EXPECT_TRUE(ned->checkin_after_write.contains(0x1000 / 32));
    EXPECT_FALSE(ned->checkin_after_access.contains(0x1000 / 32));
  }
  EXPECT_EQ(pb.last_summary().races, 1u);
}

TEST(PlanBuilderTest, PrefetchRespectsRegularRegions) {
  using K = trace::MissKind;
  trace::Trace t;
  t.labels.push_back(trace::RegionLabel{"grid", 0x1000, 0x100, true});
  t.labels.push_back(trace::RegionLabel{"tree", 0x2000, 0x100, false});
  t.misses = {
      rec(0, 0, K::ReadMiss, 0x1000),
      rec(0, 0, K::ReadMiss, 0x2000),
  };
  PlanBuilder pb(t, geo());
  sim::DirectivePlan plan =
      pb.build({.mode = Mode::Performance, .prefetch = true});
  const sim::NodeEpochDirectives* ned = plan.find(0, 0);
  ASSERT_NE(ned, nullptr);
  std::size_t pf = 0;
  for (const auto& pd : ned->at_start) {
    if (pd.kind == sim::DirectiveKind::PrefetchS ||
        pd.kind == sim::DirectiveKind::PrefetchX) {
      pf += pd.run.count();
      // Only the regular region's block may be prefetched.
      EXPECT_EQ(pd.run.first, 0x1000u / 32);
    }
  }
  EXPECT_EQ(pf, 1u);
  EXPECT_EQ(pb.last_summary().prefetch_blocks, 1u);
}

TEST(PlanBuilderTest, CapacityCapSpillsCheckouts) {
  using K = trace::MissKind;
  trace::Trace t;
  t.labels.push_back(trace::RegionLabel{"A", 0, 1u << 20, true});
  // 200 written blocks in one epoch; cache holds 128, cap at 25% => 32.
  for (int i = 0; i < 200; ++i) {
    t.misses.push_back(rec(0, 0, K::WriteMiss, static_cast<Addr>(i) * 32));
  }
  PlanBuilder pb(t, geo());
  sim::DirectivePlan plan =
      pb.build({.mode = Mode::Programmer, .capacity_fraction = 0.25});
  const sim::NodeEpochDirectives* ned = plan.find(0, 0);
  ASSERT_NE(ned, nullptr);
  std::size_t start_blocks = 0;
  for (const auto& pd : ned->at_start) start_blocks += pd.run.count();
  EXPECT_EQ(start_blocks, 32u);
  EXPECT_EQ(pb.last_summary().capacity_spills, 168u);
}

TEST(PlanBuilderTest, HistoryAblationRechecksEverything) {
  using K = trace::MissKind;
  trace::Trace t;
  t.misses = {
      rec(0, 0, K::WriteMiss, 0x1000),
      rec(1, 0, K::WriteMiss, 0x1000),
  };
  PlanBuilder pb(t, geo());
  sim::DirectivePlan with_hist = pb.build({.mode = Mode::Programmer});
  sim::DirectivePlan no_hist =
      pb.build({.mode = Mode::Programmer, .use_history = false});
  // With history: epoch 1 reuses the cached block -> no re-checkout (the
  // final check-in, with no epoch 2, is still planned).
  const sim::NodeEpochDirectives* hist_ned = with_hist.find(0, 1);
  ASSERT_NE(hist_ned, nullptr);
  EXPECT_TRUE(hist_ned->at_start.empty());
  EXPECT_FALSE(hist_ned->at_end.empty());
  // Without history: epoch 1 checks out again too.
  const sim::NodeEpochDirectives* ned = no_hist.find(0, 1);
  ASSERT_NE(ned, nullptr);
  EXPECT_FALSE(ned->at_start.empty());
  EXPECT_FALSE(ned->at_end.empty());
  // And epoch 0 checks IN even though the same node writes again next
  // epoch (history-free ci = S_i).
  const sim::NodeEpochDirectives* e0 = no_hist.find(0, 0);
  ASSERT_NE(e0, nullptr);
  EXPECT_FALSE(e0->at_end.empty());
}

TEST(PlanBuilderTest, SummaryCountsAreConsistent) {
  using K = trace::MissKind;
  trace::Trace t;
  t.labels.push_back(trace::RegionLabel{"A", 0x1000, 0x1000, true});
  t.misses = {
      rec(0, 0, K::WriteMiss, 0x1000),
      rec(0, 0, K::ReadMiss, 0x1040),
      rec(0, 1, K::ReadMiss, 0x1080),
      rec(1, 1, K::WriteMiss, 0x1040),
  };
  PlanBuilder pb(t, geo());
  sim::DirectivePlan plan = pb.build({.mode = Mode::Performance});
  const PlanSummary s = pb.last_summary();
  EXPECT_EQ(s.start_checkout_blocks, 0u);
  EXPECT_GT(s.end_checkin_blocks, 0u);
  EXPECT_GT(plan.total_directives(), 0u);
  EXPECT_FALSE(plan.summary().empty());
}

}  // namespace
}  // namespace cico::cachier
