// Exact-match tests for the section 4.1 annotation equations, built
// around the paper's worked example (Fig. 4):
//
//   "Using the equations for Programmer CICO, Cachier finds the following
//    CICO annotations for epoch i: co_s(c), co_s(a) & ci(c), ci(d).  The
//    Performance CICO annotations for the same epoch is just ci(c).  If
//    epoch i-1 was the first epoch in the program, then the Programmer
//    CICO for that epoch will be as follows: co_x(a), co_x(b), co_s(d) &
//    ci(a).  The Performance CICO for the same epoch will be just ci(a).
//    The check-in for a is necessary as there is a potential data race on
//    that variable."
//
// Reconstructed access pattern consistent with every quoted output
// (variables a..d in distinct cache blocks; epoch i-1 = 0, i = 1):
//   epoch 0:  P0 writes a, writes b, reads d;   P1 reads a  (race on a)
//   epoch 1:  P0 reads a, reads c, writes b, reads d
//   epoch 2:  P0 reads a, writes b;             P1 writes c
#include "cico/cachier/chooser.hpp"

#include <gtest/gtest.h>

namespace cico::cachier {
namespace {

mem::CacheGeometry geo() {
  mem::CacheGeometry g;
  g.size_bytes = 4096;
  g.assoc = 4;
  g.block_bytes = 32;
  return g;
}

constexpr Addr kA = 0x1000, kB = 0x1020, kC = 0x1040, kD = 0x1060;
const Block A = kA / 32, B = kB / 32, C = kC / 32, D = kD / 32;

trace::MissRecord rec(EpochId e, NodeId n, trace::MissKind k, Addr a) {
  return trace::MissRecord{e, n, k, a, 8, 1};
}

trace::Trace fig4_trace() {
  using K = trace::MissKind;
  trace::Trace t;
  t.misses = {
      // epoch 0
      rec(0, 0, K::WriteMiss, kA),
      rec(0, 0, K::WriteMiss, kB),
      rec(0, 0, K::ReadMiss, kD),
      rec(0, 1, K::ReadMiss, kA),
      // epoch 1
      rec(1, 0, K::ReadMiss, kA),
      rec(1, 0, K::ReadMiss, kC),
      rec(1, 0, K::WriteMiss, kB),
      rec(1, 0, K::ReadMiss, kD),
      // epoch 2
      rec(2, 0, K::ReadMiss, kA),
      rec(2, 0, K::WriteMiss, kB),
      rec(2, 1, K::WriteMiss, kC),
  };
  return t;
}

BlockSet set_of(std::initializer_list<Block> xs) { return BlockSet(xs); }

class Fig4Test : public ::testing::Test {
 protected:
  Fig4Test()
      : trace_(fig4_trace()),
        db_(trace_, geo()),
        sharing_(trace_, geo()),
        chooser_(db_, sharing_) {}

  trace::Trace trace_;
  EpochDB db_;
  SharingAnalyzer sharing_;
  AnnotationChooser chooser_;
};

TEST_F(Fig4Test, EpochZeroHasRaceOnA) {
  EXPECT_EQ(sharing_.epoch(0).race_blocks, set_of({A}));
  EXPECT_TRUE(sharing_.epoch(0).fs_blocks.empty());
  EXPECT_TRUE(sharing_.epoch(1).drfs_blocks.empty());
}

TEST_F(Fig4Test, ProgrammerEpochIMinusOne) {
  // "co_x(a), co_x(b), co_s(d) & ci(a)"
  AnnotationSets s = chooser_.choose(0, 0, Mode::Programmer);
  EXPECT_EQ(s.co_x, set_of({A, B}));
  EXPECT_EQ(s.co_s, set_of({D}));
  EXPECT_EQ(s.ci, set_of({A}));
  // Placement: a is raced, so its checkout/check-in are tight; b and d go
  // to the epoch boundary.  b and d stay checked out (used next epoch).
  EXPECT_EQ(s.co_x_start, set_of({B}));
  EXPECT_EQ(s.co_s_start, set_of({D}));
  EXPECT_TRUE(s.ci_end.empty());
  EXPECT_EQ(s.ci_tight, set_of({A}));
}

TEST_F(Fig4Test, PerformanceEpochIMinusOne) {
  // "The Performance CICO for the same epoch will be just ci(a)."
  AnnotationSets s = chooser_.choose(0, 0, Mode::Performance);
  EXPECT_TRUE(s.co_x.empty());  // no write faults: writes are write misses
  EXPECT_TRUE(s.co_s.empty());
  EXPECT_EQ(s.ci, set_of({A}));
  EXPECT_EQ(s.ci_tight, set_of({A}));
  EXPECT_TRUE(s.ci_end.empty());
}

TEST_F(Fig4Test, ProgrammerEpochI) {
  // "co_s(c), co_s(a) & ci(c), ci(d)"
  AnnotationSets s = chooser_.choose(1, 0, Mode::Programmer);
  EXPECT_TRUE(s.co_x.empty());
  EXPECT_EQ(s.co_s, set_of({A, C}));
  EXPECT_EQ(s.ci, set_of({C, D}));
  EXPECT_EQ(s.ci_end, set_of({C, D}));
  EXPECT_TRUE(s.ci_tight.empty());
}

TEST_F(Fig4Test, PerformanceEpochI) {
  // "The Performance CICO annotations for the same epoch is just ci(c)."
  AnnotationSets s = chooser_.choose(1, 0, Mode::Performance);
  EXPECT_TRUE(s.co_x.empty());
  EXPECT_TRUE(s.co_s.empty());
  EXPECT_EQ(s.ci, set_of({C}));
}

TEST_F(Fig4Test, SecondProcessorEpochZero) {
  // P1 only read the raced variable a.  The co_s equation is governed by
  // FS (not DRFS), so the read is still checked out; the ci equation IS
  // governed by DRFS, so the check-in is tight.
  AnnotationSets s = chooser_.choose(0, 1, Mode::Programmer);
  EXPECT_TRUE(s.co_x.empty());
  EXPECT_EQ(s.co_s, set_of({A}));
  EXPECT_EQ(s.ci, set_of({A}));
  EXPECT_EQ(s.ci_tight, set_of({A}));
}

TEST(ChooserTest, WriteFaultBecomesFetchExclusive) {
  // A block read then written (write fault) must be checked out exclusive
  // before the read in Performance mode.
  using K = trace::MissKind;
  trace::Trace t;
  t.misses = {
      rec(0, 0, K::ReadMiss, kA),
      rec(0, 0, K::WriteFault, kA),
  };
  EpochDB db(t, geo());
  SharingAnalyzer sh(t, geo());
  AnnotationChooser ch(db, sh);
  AnnotationSets s = ch.choose(0, 0, Mode::Performance);
  EXPECT_EQ(s.fetch_exclusive, set_of({A}));
  EXPECT_EQ(s.co_x, set_of({A}));
}

TEST(ChooserTest, HistorySuppressesRepeatCheckouts) {
  // A block written by the same node in consecutive epochs is only
  // checked out in the first ("a processor should check it out only if it
  // was not checked out in the previous epoch by the same processor").
  using K = trace::MissKind;
  trace::Trace t;
  t.misses = {
      rec(0, 0, K::WriteMiss, kA),
      rec(1, 0, K::WriteMiss, kA),
      rec(2, 0, K::WriteMiss, kA),
  };
  EpochDB db(t, geo());
  SharingAnalyzer sh(t, geo());
  AnnotationChooser ch(db, sh);
  EXPECT_EQ(ch.choose(0, 0, Mode::Programmer).co_x, set_of({A}));
  EXPECT_TRUE(ch.choose(1, 0, Mode::Programmer).co_x.empty());
  EXPECT_TRUE(ch.choose(2, 0, Mode::Programmer).co_x.empty());
  // And checked in only when the node stops using it (never, here, until
  // the last epoch).
  EXPECT_TRUE(ch.choose(0, 0, Mode::Programmer).ci.empty());
  EXPECT_TRUE(ch.choose(1, 0, Mode::Programmer).ci.empty());
  EXPECT_EQ(ch.choose(2, 0, Mode::Programmer).ci, set_of({A}));
}

TEST(ChooserTest, PerformanceChecksInBlocksAnotherNodeWillWrite) {
  // Performance ci term 2: "shared locations ... read by some processor
  // in the current epoch and which will be written by some processor in
  // the next epoch."
  using K = trace::MissKind;
  trace::Trace t;
  t.misses = {
      rec(0, 0, K::ReadMiss, kA),
      rec(1, 1, K::WriteMiss, kA),
  };
  EpochDB db(t, geo());
  SharingAnalyzer sh(t, geo());
  AnnotationChooser ch(db, sh);
  AnnotationSets s = ch.choose(0, 0, Mode::Performance);
  EXPECT_EQ(s.ci, set_of({A}));
  EXPECT_EQ(s.ci_end, set_of({A}));
}

TEST(ChooserTest, PerformanceKeepsBlockTheSameNodeWritesNext) {
  // Performance ci term 1 is same-node: if THIS node writes the block
  // again next epoch, do not check it in.
  using K = trace::MissKind;
  trace::Trace t;
  t.misses = {
      rec(0, 0, K::WriteMiss, kA),
      rec(1, 0, K::WriteMiss, kA),
  };
  EpochDB db(t, geo());
  SharingAnalyzer sh(t, geo());
  AnnotationChooser ch(db, sh);
  EXPECT_TRUE(ch.choose(0, 0, Mode::Performance).ci.empty());
  EXPECT_EQ(ch.choose(1, 0, Mode::Performance).ci, set_of({A}));
}

TEST(ChooserTest, EmptyEpochYieldsNothing) {
  trace::Trace t;
  t.misses = {rec(0, 0, trace::MissKind::ReadMiss, kA)};
  EpochDB db(t, geo());
  SharingAnalyzer sh(t, geo());
  AnnotationChooser ch(db, sh);
  EXPECT_EQ(ch.choose(0, 1, Mode::Programmer).total(), 0u);
  EXPECT_EQ(ch.choose(3, 0, Mode::Programmer).total(), 0u);
}

}  // namespace
}  // namespace cico::cachier
