#include "cico/cachier/sharing.hpp"

#include <gtest/gtest.h>

namespace cico::cachier {
namespace {

mem::CacheGeometry geo() {
  mem::CacheGeometry g;
  g.size_bytes = 4096;
  g.assoc = 4;
  g.block_bytes = 32;
  return g;
}

trace::MissRecord rec(EpochId e, NodeId n, trace::MissKind k, Addr a,
                      PcId pc = 1) {
  return trace::MissRecord{e, n, k, a, 8, pc};
}

TEST(SharingTest, WriteWriteRaceDetected) {
  trace::Trace t;
  t.misses = {
      rec(0, 0, trace::MissKind::WriteMiss, 0x1000),
      rec(0, 1, trace::MissKind::WriteMiss, 0x1000),
  };
  SharingAnalyzer sa(t, geo());
  EXPECT_TRUE(sa.epoch(0).race_blocks.contains(0x1000 / 32));
  ASSERT_EQ(sa.races().size(), 1u);
  EXPECT_EQ(sa.races()[0].addr, 0x1000u);
  EXPECT_EQ(sa.races()[0].nodes.size(), 2u);
}

TEST(SharingTest, ReadWriteRaceDetected) {
  trace::Trace t;
  t.misses = {
      rec(0, 0, trace::MissKind::WriteMiss, 0x1000),
      rec(0, 1, trace::MissKind::ReadMiss, 0x1000),
  };
  SharingAnalyzer sa(t, geo());
  EXPECT_TRUE(sa.epoch(0).is_drfs(0x1000 / 32));
}

TEST(SharingTest, ReadReadIsNotARace) {
  trace::Trace t;
  t.misses = {
      rec(0, 0, trace::MissKind::ReadMiss, 0x1000),
      rec(0, 1, trace::MissKind::ReadMiss, 0x1000),
  };
  SharingAnalyzer sa(t, geo());
  EXPECT_TRUE(sa.races().empty());
  // Same word from two nodes is TRUE sharing, not false sharing either.
  EXPECT_TRUE(sa.false_shares().empty());
}

TEST(SharingTest, SameNodeWritesAreNotARace) {
  trace::Trace t;
  t.misses = {
      rec(0, 0, trace::MissKind::WriteMiss, 0x1000),
      rec(0, 0, trace::MissKind::ReadMiss, 0x1000),
  };
  SharingAnalyzer sa(t, geo());
  EXPECT_TRUE(sa.races().empty());
}

TEST(SharingTest, AccessesInDifferentEpochsDoNotRace) {
  trace::Trace t;
  t.misses = {
      rec(0, 0, trace::MissKind::WriteMiss, 0x1000),
      rec(1, 1, trace::MissKind::WriteMiss, 0x1000),
  };
  SharingAnalyzer sa(t, geo());
  EXPECT_TRUE(sa.races().empty());
  EXPECT_FALSE(sa.epoch(0).is_drfs(0x1000 / 32));
  EXPECT_FALSE(sa.epoch(1).is_drfs(0x1000 / 32));
}

TEST(SharingTest, FalseSharingOnDifferentWords) {
  // "False sharing results from two or more processors accessing
  //  different addresses in the same cache block."
  trace::Trace t;
  t.misses = {
      rec(0, 0, trace::MissKind::WriteMiss, 0x1000),
      rec(0, 1, trace::MissKind::ReadMiss, 0x1008),  // same block, other word
  };
  SharingAnalyzer sa(t, geo());
  const Block b = 0x1000 / 32;
  EXPECT_TRUE(sa.epoch(0).fs_blocks.contains(b));
  EXPECT_TRUE(sa.epoch(0).is_drfs(b));
  EXPECT_TRUE(sa.races().empty());
  ASSERT_EQ(sa.false_shares().size(), 1u);
  EXPECT_EQ(sa.false_shares()[0].block, b);
}

TEST(SharingTest, ReadOnlyFalseSharingLiteralVsWriteRequired) {
  trace::Trace t;
  t.misses = {
      rec(0, 0, trace::MissKind::ReadMiss, 0x1000),
      rec(0, 1, trace::MissKind::ReadMiss, 0x1008),
  };
  // Default (write required -- see SharingOptions): read-only
  // co-residence is NOT false sharing.
  SharingAnalyzer def(t, geo());
  EXPECT_TRUE(def.false_shares().empty());
  // Paper-literal definition (A1 ablation knob): flagged even without a
  // write.
  SharingAnalyzer literal(t, geo(), SharingOptions{.fs_requires_write = false});
  EXPECT_EQ(literal.false_shares().size(), 1u);
}

TEST(SharingTest, RaceAndFalseSharingCanCoexistInOneBlock) {
  trace::Trace t;
  t.misses = {
      rec(0, 0, trace::MissKind::WriteMiss, 0x1000),
      rec(0, 1, trace::MissKind::WriteMiss, 0x1000),  // race on word 0x1000
      rec(0, 2, trace::MissKind::ReadMiss, 0x1010),   // false shares the block
  };
  SharingAnalyzer sa(t, geo());
  const Block b = 0x1000 / 32;
  EXPECT_TRUE(sa.epoch(0).race_blocks.contains(b));
  EXPECT_TRUE(sa.epoch(0).fs_blocks.contains(b));
}

TEST(SharingTest, ReportNamesRegionsAndSites) {
  trace::Trace t;
  t.labels.push_back(trace::RegionLabel{"C", 0x1000, 0x100, true});
  t.misses = {
      rec(0, 0, trace::MissKind::WriteMiss, 0x1008, 21),
      rec(0, 1, trace::MissKind::WriteMiss, 0x1008, 22),
  };
  SharingAnalyzer sa(t, geo());
  PcRegistry pcs;
  (void)pcs.intern("pad");  // ids up to 22 must exist
  for (int i = 0; i < 25; ++i) (void)pcs.intern("site" + std::to_string(i));
  const std::string rep = sa.report(t, pcs);
  EXPECT_NE(rep.find("C+8"), std::string::npos);
  EXPECT_NE(rep.find("1 potential data race"), std::string::npos);
}

TEST(SharingTest, RaceBetweenNode0AndNode64Detected) {
  // Regression for the word-level accessor masks built with
  // `1ULL << (n % 64)`: writers at nodes 0 and 64 collapsed onto one bit,
  // so their same-word write-write race was invisible.
  trace::Trace t;
  t.misses = {
      rec(0, 0, trace::MissKind::WriteMiss, 0x1000),
      rec(0, 64, trace::MissKind::WriteMiss, 0x1000),
  };
  SharingAnalyzer sa(t, geo());
  EXPECT_TRUE(sa.epoch(0).race_blocks.contains(0x1000 / 32));
  ASSERT_EQ(sa.races().size(), 1u);
  EXPECT_EQ(sa.races()[0].nodes.size(), 2u);
}

TEST(SharingTest, FalseSharingBetweenNode1AndNode65Detected) {
  // Different words of one block, writers 64 nodes apart: false sharing,
  // not a race -- and previously missed entirely (node 65 aliased onto
  // node 1, making the block look single-writer).
  trace::Trace t;
  t.misses = {
      rec(0, 1, trace::MissKind::WriteMiss, 0x1000),
      rec(0, 65, trace::MissKind::WriteMiss, 0x1008),
  };
  SharingAnalyzer sa(t, geo());
  EXPECT_FALSE(sa.epoch(0).race_blocks.contains(0x1000 / 32));
  EXPECT_TRUE(sa.epoch(0).fs_blocks.contains(0x1000 / 32));
}

}  // namespace
}  // namespace cico::cachier
