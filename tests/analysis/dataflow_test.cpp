// Unit tests for the cico::analysis dataflow framework: CfgInfo
// orderings, dominators / back edges / reducibility on the CFG shapes
// the typestate checker relies on (loops guarded by ifs, nested
// barriers), the base analyses, and widening termination on an
// infinite-height domain.
#include "cico/analysis/dataflow.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "cico/lang/cfg.hpp"
#include "cico/lang/parser.hpp"

namespace cico::analysis {
namespace {

using lang::AstId;
using lang::Cfg;
using lang::Program;

/// Block containing statement `id` (asserts it exists).
std::uint32_t block_of(const Cfg& cfg, AstId id) {
  for (const auto& b : cfg.blocks()) {
    if (std::find(b.stmts.begin(), b.stmts.end(), id) != b.stmts.end()) {
      return b.id;
    }
  }
  ADD_FAILURE() << "no block holds stmt " << id;
  return 0;
}

TEST(CfgInfoTest, RpoStartsAtEntryAndCoversReachableBlocks) {
  Program p = lang::parse(R"(
    shared real A[8];
    parallel
      A[0] = 1;
      barrier;
      A[1] = 2;
    end
  )");
  Cfg cfg(p);
  CfgInfo info(cfg);
  ASSERT_FALSE(info.rpo.empty());
  EXPECT_EQ(info.rpo.front(), cfg.entry());
  for (const auto& b : cfg.blocks()) EXPECT_TRUE(info.reachable(b.id));
  // rpo_pos inverts rpo.
  for (std::uint32_t i = 0; i < info.rpo.size(); ++i) {
    EXPECT_EQ(info.rpo_pos[info.rpo[i]], i);
  }
  // Straight-line program: no headers, exactly one exit, the Cfg's exit.
  EXPECT_TRUE(std::none_of(info.is_header.begin(), info.is_header.end(),
                           [](bool h) { return h; }));
  ASSERT_EQ(info.exits.size(), 1u);
  EXPECT_EQ(info.exits[0], cfg.exit());
  EXPECT_TRUE(cfg.blocks()[cfg.exit()].succ.empty());
}

TEST(CfgInfoTest, PredEdgesMirrorSuccEdges) {
  Program p = lang::parse(R"(
    parallel
      for i = 0 to 3 do
        if pid == 0 then
          compute 1;
        else
          compute 2;
        fi
      od
    end
  )");
  Cfg cfg(p);
  for (const auto& b : cfg.blocks()) {
    for (std::uint32_t s : b.succ) {
      const auto& preds = cfg.blocks()[s].pred;
      EXPECT_NE(std::find(preds.begin(), preds.end(), b.id), preds.end())
          << "edge " << b.id << "->" << s << " missing from pred list";
    }
    for (std::uint32_t pr : b.pred) {
      const auto& succs = cfg.blocks()[pr].succ;
      EXPECT_NE(std::find(succs.begin(), succs.end(), b.id), succs.end());
    }
  }
}

TEST(DominatorsTest, DiamondJoinIsDominatedByCondOnly) {
  Program p = lang::parse(R"(
    parallel
      if pid == 0 then
        compute 1;
      else
        compute 2;
      fi
      compute 3;
    end
  )");
  Cfg cfg(p);
  CfgInfo info(cfg);
  Dominators dom(cfg, info);
  const std::uint32_t cond = block_of(cfg, p.body[0]->id);
  const std::uint32_t then_b = block_of(cfg, p.body[0]->body[0]->id);
  const std::uint32_t else_b = block_of(cfg, p.body[0]->else_body[0]->id);
  const std::uint32_t join = block_of(cfg, p.body[1]->id);
  EXPECT_TRUE(dom.dominates(cond, then_b));
  EXPECT_TRUE(dom.dominates(cond, else_b));
  EXPECT_TRUE(dom.dominates(cond, join));
  EXPECT_FALSE(dom.dominates(then_b, join));
  EXPECT_FALSE(dom.dominates(else_b, join));
  EXPECT_EQ(dom.idom(join), cond);
  EXPECT_TRUE(dom.back_edges().empty());
  EXPECT_TRUE(dom.is_reducible());
}

TEST(DominatorsTest, LoopHeaderDominatesBodyAndOwnsTheBackEdge) {
  Program p = lang::parse(R"(
    shared real A[8];
    parallel
      for i = 0 to 7 do
        A[0] = i;
      od
    end
  )");
  Cfg cfg(p);
  CfgInfo info(cfg);
  Dominators dom(cfg, info);
  const std::uint32_t header = block_of(cfg, p.body[0]->id);
  const std::uint32_t body = block_of(cfg, p.body[0]->body[0]->id);
  EXPECT_TRUE(info.is_header[header]);
  EXPECT_TRUE(dom.dominates(header, body));
  ASSERT_EQ(dom.back_edges().size(), 1u);
  EXPECT_EQ(dom.back_edges()[0].second, header);
  EXPECT_TRUE(dom.dominates(header, dom.back_edges()[0].first));
  EXPECT_TRUE(dom.is_reducible());
}

// The "break/continue-ish" shape the typestate checker must survive:
// conditionally-skipped work and nested barriers inside a loop.  MiniPar
// has no break statement, so guards around partial bodies are how real
// programs express early-out iterations.
TEST(DominatorsTest, GuardedBodyWithNestedBarriersStaysReducible) {
  Program p = lang::parse(R"(
    shared real A[8];
    parallel
      for i = 0 to 7 do
        if i % 2 == 0 then
          A[0] = i;
        fi
        barrier;
        if pid == 0 then
          A[1] = i;
        fi
        barrier;
      od
      barrier;
    end
  )");
  Cfg cfg(p);
  CfgInfo info(cfg);
  Dominators dom(cfg, info);
  EXPECT_TRUE(dom.is_reducible());
  ASSERT_EQ(dom.back_edges().size(), 1u);
  const std::uint32_t header = block_of(cfg, p.body[0]->id);
  EXPECT_TRUE(info.is_header[header]);
  // Every reachable block is dominated by the entry, and every block of
  // the loop body by the header.
  for (std::uint32_t b : info.rpo) {
    EXPECT_TRUE(dom.dominates(cfg.entry(), b));
  }
  const std::uint32_t barrier1 = block_of(cfg, p.body[0]->body[1]->id);
  const std::uint32_t barrier2 = block_of(cfg, p.body[0]->body[3]->id);
  EXPECT_TRUE(dom.dominates(header, barrier1));
  EXPECT_TRUE(dom.dominates(header, barrier2));
  EXPECT_TRUE(dom.dominates(barrier1, barrier2));
}

TEST(DominatorsTest, NestedLoopsYieldOneBackEdgeEach) {
  Program p = lang::parse(R"(
    parallel
      for i = 0 to 3 do
        for j = 0 to 3 do
          compute 1;
          barrier;
        od
        barrier;
      od
    end
  )");
  Cfg cfg(p);
  CfgInfo info(cfg);
  Dominators dom(cfg, info);
  EXPECT_TRUE(dom.is_reducible());
  ASSERT_EQ(dom.back_edges().size(), 2u);
  const std::uint32_t outer = block_of(cfg, p.body[0]->id);
  const std::uint32_t inner = block_of(cfg, p.body[0]->body[0]->id);
  EXPECT_TRUE(info.is_header[outer]);
  EXPECT_TRUE(info.is_header[inner]);
  EXPECT_TRUE(dom.dominates(outer, inner));
  EXPECT_FALSE(dom.dominates(inner, outer));
}

TEST(SharedAccessTest, ReadsBeforeWriteAndSubscriptReads) {
  Program p = lang::parse(R"(
    shared real A[8];
    shared real IX[8];
    parallel
      A[IX[0]] = A[1] + 2;
    end
  )");
  SharedArrays arrays(p);
  ASSERT_EQ(arrays.size(), 2u);
  EXPECT_EQ(arrays.index_of("A"), 0);
  EXPECT_EQ(arrays.index_of("IX"), 1);
  EXPECT_EQ(arrays.index_of("nope"), -1);
  const auto accs = shared_accesses(*p.body[0], arrays);
  ASSERT_EQ(accs.size(), 3u);
  EXPECT_EQ(accs[0].array, 1u);  // IX subscript read
  EXPECT_FALSE(accs[0].write);
  EXPECT_EQ(accs[1].array, 0u);  // A[1] rhs read
  EXPECT_FALSE(accs[1].write);
  EXPECT_EQ(accs[2].array, 0u);  // A write, last
  EXPECT_TRUE(accs[2].write);
}

TEST(ReachingDefsTest, DefsMergeAtLoopHeaderAndKillInStraightLine) {
  Program p = lang::parse(R"(
    shared real A[8];
    parallel
      private x = 0;
      private y = 1;
      x = 2;
      for i = 0 to 3 do
        x = i;
      od
      A[0] = x;
    end
  )");
  Cfg cfg(p);
  CfgInfo info(cfg);
  ReachingDefs rd(p, cfg, info);
  const AstId def0 = p.body[0]->id;      // private x = 0 (killed)
  const AstId def2 = p.body[2]->id;      // x = 2
  const AstId defloop = p.body[3]->body[0]->id;  // x = i
  const std::uint32_t header = block_of(cfg, p.body[3]->id);
  const std::uint32_t after = block_of(cfg, p.body[4]->id);
  // At the loop header both the pre-loop def and the loop def may reach.
  const auto& at_header = rd.reaching_in(header, "x");
  EXPECT_TRUE(at_header.count(def2));
  EXPECT_TRUE(at_header.count(defloop));
  EXPECT_FALSE(at_header.count(def0));  // killed by x = 2
  // Same set flows to the loop exit.
  const auto& at_after = rd.reaching_in(after, "x");
  EXPECT_TRUE(at_after.count(def2));
  EXPECT_TRUE(at_after.count(defloop));
  // Unknown variables come back empty rather than throwing.
  EXPECT_TRUE(rd.reaching_in(after, "zzz").empty());
  EXPECT_FALSE(rd.reaching_in(after, "y").empty());
}

TEST(LiveSharedArraysTest, LiveBeforeUseKilledByBarrier) {
  Program p = lang::parse(R"(
    shared real A[8];
    shared real B[8];
    parallel
      compute 1;
      A[0] = 1;
      barrier;
      compute 2;
      B[0] = 2;
    end
  )");
  Cfg cfg(p);
  CfgInfo info(cfg);
  LiveSharedArrays live(p, cfg, info);
  const std::uint32_t first = block_of(cfg, p.body[0]->id);
  const std::uint32_t second = block_of(cfg, p.body[3]->id);
  const auto a = static_cast<std::uint32_t>(live.arrays().index_of("A"));
  const auto b = static_cast<std::uint32_t>(live.arrays().index_of("B"));
  EXPECT_TRUE(live.live_in(first, a));
  // B's use is beyond the barrier: dead at the top of the first epoch.
  EXPECT_FALSE(live.live_in(first, b));
  EXPECT_TRUE(live.live_in(second, b));
  EXPECT_FALSE(live.live_in(second, a));
}

// Infinite-ascending-chain domain: a saturating counter incremented once
// per block.  Around a loop the header input keeps growing, so only the
// widening hook lets the solver reach a fixpoint quickly.
struct CounterDomain {
  using State = long;
  static constexpr long kBottom = -1;
  static constexpr long kTop = 1000000;

  [[nodiscard]] State init() const { return kBottom; }
  [[nodiscard]] State boundary() const { return 0; }
  bool join(State& into, const State& from) const {
    if (from > into) {
      into = from;
      return true;
    }
    return false;
  }
  bool widen(State& into, const State& from) const {
    if (from > into) {
      into = kTop;  // jump straight to the chain's limit
      return true;
    }
    return false;
  }
  void transfer(std::uint32_t, State& s) const {
    if (s >= 0 && s < kTop) s += 1;
  }
};

TEST(SolverTest, WideningTerminatesInfiniteChainAtLoopHeader) {
  Program p = lang::parse(R"(
    parallel
      for i = 0 to 3 do
        compute 1;
      od
    end
  )");
  Cfg cfg(p);
  CfgInfo info(cfg);
  const CounterDomain dom;
  const auto sol = solve(info, dom, Direction::Forward, /*widen_after=*/3);
  const std::uint32_t header = block_of(cfg, p.body[0]->id);
  EXPECT_EQ(sol.in[header], CounterDomain::kTop);
  // Downstream of the widened header everything saturates too.
  EXPECT_EQ(sol.in[cfg.exit()], CounterDomain::kTop);
}

// Finite may-bitmask domain whose widen() is just join(): the widening
// threshold must not change its fixpoint.
struct SeenDomain {
  using State = int;  // -1 bottom, else bitmask of accessed arrays

  const Cfg* cfg;
  const StmtIndex* stmts;
  const SharedArrays* arrays;

  [[nodiscard]] State init() const { return -1; }
  [[nodiscard]] State boundary() const { return 0; }
  bool join(State& into, const State& from) const {
    if (from < 0) return false;
    const State merged = into < 0 ? from : (into | from);
    if (merged != into) {
      into = merged;
      return true;
    }
    return false;
  }
  bool widen(State& into, const State& from) const { return join(into, from); }
  void transfer(std::uint32_t block, State& s) const {
    if (s < 0) return;
    for (AstId id : cfg->blocks()[block].stmts) {
      if (const lang::Stmt* st = stmts->stmt(id)) {
        for (const SharedAccess& a : shared_accesses(*st, *arrays)) {
          s |= 1 << a.array;
        }
      }
    }
  }
};

TEST(SolverTest, FiniteDomainUnaffectedByWidening) {
  Program p = lang::parse(R"(
    shared real A[8];
    shared real B[8];
    parallel
      for i = 0 to 3 do
        A[0] = i;
        barrier;
      od
      B[1] = 9;
    end
  )");
  Cfg cfg(p);
  CfgInfo info(cfg);
  const StmtIndex stmts(p);
  const SharedArrays arrays(p);
  const SeenDomain dom{&cfg, &stmts, &arrays};
  const auto plain = solve(info, dom, Direction::Forward, /*widen_after=*/0);
  const auto widened = solve(info, dom, Direction::Forward, /*widen_after=*/1);
  ASSERT_EQ(plain.in.size(), widened.in.size());
  for (std::size_t b = 0; b < plain.in.size(); ++b) {
    EXPECT_EQ(plain.in[b], widened.in[b]) << "block " << b;
    EXPECT_EQ(plain.out[b], widened.out[b]) << "block " << b;
  }
}

}  // namespace
}  // namespace cico::analysis
