// Static planner tests: the barrier epoch graph, the per-pid
// interleaving classifier (Untouched / Exclusive / SharedRead /
// Conflict, with whole-array approximation of non-affine subscripts),
// and plan_static's directive families (write-first checkouts,
// producer-consumer checkins, rectangle part-splitting).
#include "cico/analysis/static_plan.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "cico/lang/parser.hpp"

namespace cico::analysis {
namespace {

lang::AstId barrier_id(const lang::Program& p, int which) {
  int seen = 0;
  for (const auto& s : p.body) {
    if (s->kind == lang::StmtKind::Barrier && seen++ == which) return s->id;
  }
  return 0;
}

TEST(StaticEpochsTest, LoopBarrierFeedsBackAndEndsProgram) {
  const lang::Program p = lang::parse(R"(
    shared real A[8];
    parallel
      A[pid] = 1;
      barrier;
      for t = 1 to 2 do
        A[pid] = A[pid] + 1;
        barrier;
      od
    end
  )");
  const StaticEpochs ep(p);
  ASSERT_EQ(ep.epochs().size(), 3u);  // entry, B1, loop barrier B2
  const lang::AstId b1 = barrier_id(p, 0);
  const int entry = ep.index_of(0);
  const int e1 = ep.index_of(b1);
  ASSERT_GE(entry, 0);
  ASSERT_GE(e1, 0);
  // Entry epoch ends at B1, never at program end.
  EXPECT_EQ(ep.epochs()[entry].succ, std::vector<lang::AstId>{b1});
  EXPECT_FALSE(ep.epochs()[entry].ends_program);
  // The loop-body epoch (anchored at the barrier inside the loop) can
  // loop back to itself, and execution ends inside it.
  const StaticEpoch* loop_epoch = nullptr;
  for (const auto& e : ep.epochs()) {
    if (e.anchor != 0 && e.anchor != b1) loop_epoch = &e;
  }
  ASSERT_NE(loop_epoch, nullptr);
  EXPECT_TRUE(loop_epoch->ends_program);
  EXPECT_NE(std::find(loop_epoch->succ.begin(), loop_epoch->succ.end(),
                      loop_epoch->anchor),
            loop_epoch->succ.end());
}

TEST(StaticSharingTest, ClassifiesTheLattice) {
  const lang::Program p = lang::parse(R"(
    const N = 8;
    shared real W[N];
    shared real R[N];
    shared real C[N];
    parallel
      private per = N / nprocs;
      private lo = pid * per;
      W[lo] = 1;
      private x = R[0];
      C[0] = C[0] + 1;
      barrier;
    end
  )");
  const StaticEpochs ep(p);
  const StaticSharing sh(p, ep, 2);
  const int w = sh.array_index("W");
  const int r = sh.array_index("R");
  const int c = sh.array_index("C");
  ASSERT_GE(w, 0);
  ASSERT_GE(r, 0);
  ASSERT_GE(c, 0);
  const int entry = ep.index_of(0);
  // Per-node block starts: node 0 writes W[0], node 1 writes W[4].
  EXPECT_EQ(sh.classify(entry, w, 0), ShareClass::Exclusive);
  EXPECT_EQ(sh.classify(entry, w, 4), ShareClass::Exclusive);
  EXPECT_EQ(sh.classify(entry, w, 1), ShareClass::Untouched);
  // R[0] is read by every node and written by none.
  EXPECT_EQ(sh.classify(entry, r, 0), ShareClass::SharedRead);
  // C[0] is read-modify-written by every node.
  EXPECT_EQ(sh.classify(entry, c, 0), ShareClass::Conflict);
}

TEST(StaticSharingTest, NonAffineSubscriptApproximatesToWholeArray) {
  const lang::Program p = lang::parse(R"(
    const N = 8;
    shared real A[N];
    shared real B[N];
    parallel
      A[B[0]] = 1;
      barrier;
    end
  )");
  const StaticEpochs ep(p);
  const StaticSharing sh(p, ep, 2);
  const int a = sh.array_index("A");
  ASSERT_GE(a, 0);
  const int entry = ep.index_of(0);
  const AccessMasks& m = sh.masks(entry, a);
  EXPECT_NE(m.approx_w, 0u);  // every node might write anywhere
  // Approximated multi-writer access classifies as Conflict everywhere.
  EXPECT_EQ(sh.classify(entry, a, 0), ShareClass::Conflict);
  EXPECT_EQ(sh.classify(entry, a, 7), ShareClass::Conflict);
}

TEST(StaticPlanTest, WriteFirstCheckoutAndProducerConsumerCheckin) {
  const lang::Program p = lang::parse(R"(
    const N = 8;
    shared real A[N];
    parallel
      private per = N / nprocs;
      private lo = pid * per;
      private hi = lo + per - 1;
      for i = lo to hi do
        A[i] = A[i] + 1;
      od
      barrier;
      private s = 0;
      for i = 0 to N - 1 do
        s = s + A[i];
      od
      barrier;
    end
  )");
  const StaticPlan plan = plan_static(p, 2, {});
  ASSERT_EQ(plan.nodes, 2);
  // The read-modify-write of each node's block plans an exclusive
  // checkout at program start covering exactly the block.
  const StaticFamily* cox = nullptr;
  const StaticFamily* ci = nullptr;
  for (const auto& f : plan.families) {
    if (f.kind == sim::DirectiveKind::CheckOutX && f.array == "A") cox = &f;
    if (f.kind == sim::DirectiveKind::CheckIn && f.array == "A" &&
        ci == nullptr) {
      ci = &f;
    }
  }
  ASSERT_NE(cox, nullptr);
  EXPECT_TRUE(cox->at_start);
  EXPECT_EQ(cox->anchor, 0u);
  ASSERT_EQ(cox->per_node.size(), 2u);
  EXPECT_EQ(cox->per_node[0], (std::vector<std::uint32_t>{0, 1, 2, 3}));
  EXPECT_EQ(cox->per_node[1], (std::vector<std::uint32_t>{4, 5, 6, 7}));
  // The next epoch reads the WHOLE array on every node, so the produced
  // blocks are checked in at the boundary for the consumers.
  ASSERT_NE(ci, nullptr);
  EXPECT_FALSE(ci->at_start);
}

TEST(StaticPlanTest, ScatteredRegionSplitsIntoParts) {
  const lang::Program p = lang::parse(R"(
    const N = 16;
    shared real A[N];
    parallel
      private lo = pid * 2;
      A[lo] = A[lo] + 1;
      A[lo + 8] = A[lo + 8] + 1;
      barrier;
    end
  )");
  const StaticPlan plan = plan_static(p, 2, {});
  // Each node touches two elements 8 apart: the checkout family must
  // split into two rectangle parts instead of being dropped or hulled.
  std::vector<int> parts;
  for (const auto& f : plan.families) {
    if (f.kind == sim::DirectiveKind::CheckOutX && f.array == "A") {
      parts.push_back(f.part);
      for (const auto& pn : f.per_node) EXPECT_LE(pn.size(), 1u);
    }
  }
  std::sort(parts.begin(), parts.end());
  EXPECT_EQ(parts, (std::vector<int>{0, 1}));
}

TEST(StaticPlanTest, ConflictsAreNotedAndLeftUnannotated) {
  const lang::Program p = lang::parse(R"(
    const N = 8;
    shared real A[N];
    parallel
      A[0] = A[0] + 1;
      barrier;
    end
  )");
  const StaticPlan plan = plan_static(p, 2, {});
  EXPECT_GT(plan.conflict_pairs, 0u);
  for (const auto& f : plan.families) {
    if (f.kind != sim::DirectiveKind::CheckOutX) continue;
    for (const auto& pn : f.per_node) EXPECT_TRUE(pn.empty());
  }
  bool noted = false;
  for (const auto& n : plan.notes) {
    noted = noted || n.find("conflicting") != std::string::npos;
  }
  EXPECT_TRUE(noted);
}

TEST(StaticPlanTest, ProgrammerModePlansSharedCheckouts) {
  const lang::Program p = lang::parse(R"(
    const N = 8;
    shared real A[N];
    parallel
      if pid == 0 then
        for i = 0 to N - 1 do
          A[i] = i;
        od
      fi
      barrier;
      private s = 0;
      for i = 0 to N - 1 do
        s = s + A[i];
      od
      barrier;
    end
  )");
  StaticPlanOptions opt;
  opt.mode = PlanMode::Programmer;
  const StaticPlan plan = plan_static(p, 2, opt);
  bool cos = false;
  for (const auto& f : plan.families) {
    cos = cos || (f.kind == sim::DirectiveKind::CheckOutS && f.array == "A");
  }
  EXPECT_TRUE(cos);
}

}  // namespace
}  // namespace cico::analysis
