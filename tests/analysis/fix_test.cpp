// `cachier lint --fix` engine tests: one mechanical repair per CICO
// rule, the lint -> apply -> lint convergence loop, and the idempotence
// contract (fixed output is user source that round-trips byte-for-byte
// and re-fixes to zero applied changes).
#include "cico/analysis/fix.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "cico/analysis/typestate.hpp"
#include "cico/lang/parser.hpp"
#include "cico/lang/unparse.hpp"

namespace cico::analysis {
namespace {

FixResult fix_src(const std::string& src) {
  return apply_fixes(lang::parse(src));
}

bool has_rule(const LintResult& r, Rule rule) {
  return std::any_of(r.diagnostics.begin(), r.diagnostics.end(),
                     [&](const Diagnostic& d) { return d.rule == rule; });
}

TEST(FixTest, CleanProgramIsUntouched) {
  const std::string src = R"(
    shared real A[8];
    parallel
      check_out_X A[0:7];
      A[0] = 1;
      check_in A[0:7];
      barrier;
    end
  )";
  const FixResult r = fix_src(src);
  EXPECT_EQ(r.applied, 0u);
  EXPECT_TRUE(r.lint.diagnostics.empty());
  EXPECT_EQ(lang::unparse(r.program), lang::unparse(lang::parse(src)));
}

TEST(FixTest, InsertsCheckoutForMissedWriteAndRead) {
  // Both arrays are CICO-managed (first epoch), then accessed bare with
  // no trailing check_in to license the idiom: CICO001 on the write,
  // CICO002 on the read.
  const FixResult r = fix_src(R"(
    shared real A[8];
    shared real B[8];
    parallel
      check_out_X A[0:7];
      A[0] = 1;
      check_in A[0:7];
      check_out_S B[0:7];
      private y = B[0];
      check_in B[0:7];
      barrier;
      A[1] = 2;
      private x = B[1];
      barrier;
    end
  )");
  EXPECT_GE(r.applied, 2u);
  EXPECT_TRUE(r.lint.diagnostics.empty())
      << r.lint.diagnostics[0].message;
}

TEST(FixTest, StrengthensSharedCheckoutUnderWrite) {
  const FixResult r = fix_src(R"(
    shared real A[8];
    parallel
      check_out_S A[0:7];
      A[0] = 1;
      check_in A[0:7];
      barrier;
    end
  )");
  EXPECT_GE(r.applied, 1u);
  EXPECT_FALSE(has_rule(r.lint, Rule::WriteUnderShared));
  EXPECT_TRUE(r.lint.diagnostics.empty());
  // The S checkout was flipped, not duplicated.
  const std::string out = lang::unparse(r.program);
  EXPECT_EQ(out.find("check_out_S"), std::string::npos) << out;
  EXPECT_NE(out.find("check_out_X"), std::string::npos) << out;
}

TEST(FixTest, DeletesRedundantRecheckout) {
  const FixResult r = fix_src(R"(
    shared real A[8];
    parallel
      check_out_X A[0:7];
      check_out_X A[0:7];
      A[0] = 1;
      check_in A[0:7];
      barrier;
    end
  )");
  EXPECT_GE(r.applied, 1u);
  EXPECT_TRUE(r.lint.diagnostics.empty());
  const std::string out = lang::unparse(r.program);
  // Exactly one checkout survives.
  const auto first = out.find("check_out_X");
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(out.find("check_out_X", first + 1), std::string::npos) << out;
}

TEST(FixTest, DeletesUnmatchedCheckin) {
  const FixResult r = fix_src(R"(
    shared real A[8];
    shared real B[8];
    parallel
      check_out_X B[0:7];
      B[0] = 1;
      check_in B[0:7];
      check_in A[0:7];
      barrier;
    end
  )");
  EXPECT_GE(r.applied, 1u);
  EXPECT_FALSE(has_rule(r.lint, Rule::CheckinWithoutCheckout));
  EXPECT_TRUE(r.lint.diagnostics.empty());
}

TEST(FixTest, AppendsProgramEndCheckinForLeak) {
  const FixResult r = fix_src(R"(
    shared real A[8];
    parallel
      check_out_X A[0:7];
      A[0] = 1;
      barrier;
    end
  )");
  EXPECT_GE(r.applied, 1u);
  EXPECT_FALSE(has_rule(r.lint, Rule::CheckoutLeak));
  EXPECT_TRUE(r.lint.diagnostics.empty());
  EXPECT_NE(lang::unparse(r.program).find("check_in"), std::string::npos);
}

TEST(FixTest, DelaysEarlyCheckinPastLastUse) {
  const FixResult r = fix_src(R"(
    shared real A[8];
    parallel
      check_out_X A[0:7];
      A[0] = 1;
      check_in A[0:7];
      private x = A[0];
      barrier;
    end
  )");
  EXPECT_GE(r.applied, 1u);
  EXPECT_FALSE(has_rule(r.lint, Rule::EarlyCheckin));
  EXPECT_TRUE(r.lint.diagnostics.empty());
  // The check_in now sits after the read.
  const std::string out = lang::unparse(r.program);
  EXPECT_LT(out.find("x = A[0]"), out.find("check_in")) << out;
}

TEST(FixTest, HoistsLoopInvariantCheckout) {
  const FixResult r = fix_src(R"(
    shared real A[8];
    parallel
      for i = 0 to 7 do
        check_out_S A[0:7];
        private x = A[i];
      od
      check_in A[0:7];
      barrier;
    end
  )");
  EXPECT_GE(r.applied, 1u);
  EXPECT_FALSE(has_rule(r.lint, Rule::RedundantLoopCheckout));
  EXPECT_TRUE(r.lint.diagnostics.empty());
  const std::string out = lang::unparse(r.program);
  EXPECT_LT(out.find("check_out_S"), out.find("for ")) << out;
}

TEST(FixTest, DeletesLatePrefetch) {
  const FixResult r = fix_src(R"(
    shared real A[8];
    parallel
      check_out_X A[0:7];
      A[0] = 1;
      prefetch_X A[0:7];
      check_in A[0:7];
      barrier;
    end
  )");
  EXPECT_GE(r.applied, 1u);
  EXPECT_FALSE(has_rule(r.lint, Rule::PrefetchAfterUse));
  EXPECT_TRUE(r.lint.diagnostics.empty());
  EXPECT_EQ(lang::unparse(r.program).find("prefetch"), std::string::npos);
}

TEST(FixTest, OneFixCanExposeAnotherAcrossPasses) {
  // Hoisting the checkout out of the inner loop (pass 1) leaves it
  // loop-invariant in the outer loop; convergence needs a second pass.
  const FixResult r = fix_src(R"(
    shared real A[8];
    parallel
      for i = 0 to 3 do
        for j = 0 to 3 do
          check_out_S A[0:7];
          private x = A[j];
        od
      od
      check_in A[0:7];
      barrier;
    end
  )");
  EXPECT_TRUE(r.lint.diagnostics.empty())
      << r.lint.diagnostics[0].message;
  EXPECT_GE(r.passes, 2u);
  // The checkout ends up above BOTH loops.
  const std::string out = lang::unparse(r.program);
  EXPECT_LT(out.find("check_out_S"), out.find("for ")) << out;
}

TEST(FixTest, FixedOutputIsIdempotent) {
  const char* kDirty = R"(
    shared real A[8];
    shared real B[8];
    parallel
      check_out_S A[0:7];
      A[0] = 1;
      B[0] = 2;
      check_in A[0:7];
      private x = A[1];
      barrier;
      check_in B[0:7];
      barrier;
    end
  )";
  const FixResult first = fix_src(kDirty);
  ASSERT_TRUE(first.lint.diagnostics.empty())
      << first.lint.diagnostics[0].message;
  const std::string out1 = lang::unparse(first.program);
  // Round 2 on the fixed source: nothing left to do, byte-identical
  // output.  This is the `--fix` CLI contract (fix-inserted directives
  // must not carry the synthesized marker, which a re-parse would drop).
  const FixResult second = fix_src(out1);
  EXPECT_EQ(second.applied, 0u);
  EXPECT_EQ(lang::unparse(second.program), out1);
}

}  // namespace
}  // namespace cico::analysis
