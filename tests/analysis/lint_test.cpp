// CICO typestate linter tests: one positive + one negative case per rule,
// the scripted section 6 hand-annotation defects (Mp3d / Barnes / MM),
// the annotator self-lint oracle over the bundled example apps, and the
// JSON diagnostic document (shape, determinism, `cachier diff`ability).
#include "cico/analysis/typestate.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <sstream>
#include <string>
#include <tuple>

#include "cico/analysis/diagnostics.hpp"
#include "cico/lang/interp.hpp"
#include "cico/lang/parser.hpp"
#include "cico/lang/unparse.hpp"
#include "cico/obs/diff.hpp"
#include "cico/obs/json.hpp"
#include "cico/srcann/annotator.hpp"
#include "cico/trace/trace.hpp"

namespace cico::analysis {
namespace {

LintResult lint_src(const std::string& src) {
  return lint(lang::parse(src));
}

bool has_rule(const LintResult& r, Rule rule) {
  return std::any_of(r.diagnostics.begin(), r.diagnostics.end(),
                     [&](const Diagnostic& d) { return d.rule == rule; });
}

int count_rule(const LintResult& r, Rule rule) {
  return static_cast<int>(
      std::count_if(r.diagnostics.begin(), r.diagnostics.end(),
                    [&](const Diagnostic& d) { return d.rule == rule; }));
}

// --- per-rule positive / negative cases ------------------------------------

TEST(LintRules, MissedCheckoutWriteAndRead) {
  const LintResult r = lint_src(R"(
    shared real A[8];
    parallel
      check_out_X A[0:7];
      A[0] = 1;
      check_in A[0:7];
      barrier;
      A[1] = 2;
      private x = A[2];
    end
  )");
  EXPECT_TRUE(has_rule(r, Rule::MissedCheckoutWrite));
  EXPECT_TRUE(has_rule(r, Rule::MissedCheckoutRead));
  EXPECT_EQ(r.exit_code(), 2);  // CICO001 is an error
}

TEST(LintRules, WriteThenCheckinIdiomIsClean) {
  // The annotator publishes initialization epochs as bare writes followed
  // by a check_in -- that must not count as a missed checkout.
  const LintResult r = lint_src(R"(
    shared real A[8];
    parallel
      A[0] = 1;
      check_in A[0:7];
      barrier;
      check_out_S A[0:7];
      private x = A[0];
      check_in A[0:7];
      barrier;
    end
  )");
  EXPECT_TRUE(r.diagnostics.empty())
      << rule_id(r.diagnostics[0].rule) << ": " << r.diagnostics[0].message;
}

TEST(LintRules, UnmanagedArraysAreExempt) {
  // No check_out anywhere: the program simply does not use CICO for A, so
  // bare accesses are not diagnosable (this is every unannotated input).
  const LintResult r = lint_src(R"(
    shared real A[8];
    parallel
      A[0] = 1;
      barrier;
      private x = A[0];
    end
  )");
  EXPECT_TRUE(r.diagnostics.empty());
  EXPECT_EQ(r.exit_code(), 0);
}

TEST(LintRules, WriteUnderSharedCheckout) {
  const LintResult r = lint_src(R"(
    shared real A[8];
    parallel
      check_out_S A[0:7];
      A[0] = 1;
      check_in A[0:7];
      barrier;
    end
  )");
  EXPECT_TRUE(has_rule(r, Rule::WriteUnderShared));
  EXPECT_EQ(r.exit_code(), 2);
}

TEST(LintRules, LockSuppressesWriteDiagnostics) {
  const LintResult r = lint_src(R"(
    shared real A[8];
    parallel
      check_out_S A[0:7];
      lock A[0];
      A[0] = A[0] + 1;
      unlock A[0];
      check_in A[0:7];
      barrier;
    end
  )");
  EXPECT_FALSE(has_rule(r, Rule::WriteUnderShared));
  EXPECT_FALSE(has_rule(r, Rule::MissedCheckoutWrite));
}

TEST(LintRules, DoubleCheckoutSameRegionSameEpoch) {
  const LintResult r = lint_src(R"(
    shared real A[8];
    parallel
      check_out_X A[0:7];
      check_out_X A[0:7];
      A[0] = 1;
      check_in A[0:7];
      barrier;
    end
  )");
  EXPECT_TRUE(has_rule(r, Rule::DoubleCheckout));
  EXPECT_EQ(r.exit_code(), 1);
}

TEST(LintRules, DifferentRegionOrNewEpochIsNotDoubleCheckout) {
  const LintResult r = lint_src(R"(
    shared real A[8];
    parallel
      check_out_X A[0:3];
      check_out_X A[4:7];
      A[0] = 1;
      check_in A[0:7];
      barrier;
      check_out_X A[0:3];
      A[1] = 2;
      check_in A[0:3];
      barrier;
    end
  )");
  EXPECT_FALSE(has_rule(r, Rule::DoubleCheckout));
}

TEST(LintRules, CheckinWithoutCheckoutOrWrites) {
  const LintResult r = lint_src(R"(
    shared real A[8];
    parallel
      check_in A[0:7];
    end
  )");
  EXPECT_TRUE(has_rule(r, Rule::CheckinWithoutCheckout));
  EXPECT_EQ(r.exit_code(), 2);
}

TEST(LintRules, CheckoutLeakAtProgramEnd) {
  const LintResult r = lint_src(R"(
    shared real A[8];
    parallel
      check_out_X A[0:7];
      A[0] = 1;
      barrier;
    end
  )");
  ASSERT_TRUE(has_rule(r, Rule::CheckoutLeak));
  // Anchored at the first check_out of the leaking array.
  for (const Diagnostic& d : r.diagnostics) {
    if (d.rule == Rule::CheckoutLeak) {
      EXPECT_EQ(d.array, "A");
      EXPECT_EQ(d.line, 4);
    }
  }
}

TEST(LintRules, PairedOnSomePathSuppressesLeak) {
  // A is checked in on one path: the pairing exists, so holding the region
  // to program end on the other path is deliberate (the annotator's
  // programmer placement does exactly this).  B has no check_in anywhere.
  const LintResult r = lint_src(R"(
    shared real A[8];
    shared real B[8];
    parallel
      check_out_X A[0:7];
      check_out_X B[0:7];
      A[0] = 1;
      B[0] = 1;
      if pid == 0 then
        check_in A[0:7];
      fi
      barrier;
    end
  )");
  ASSERT_TRUE(has_rule(r, Rule::CheckoutLeak));
  for (const Diagnostic& d : r.diagnostics) {
    if (d.rule == Rule::CheckoutLeak) {
      EXPECT_EQ(d.array, "B");
    }
  }
}

TEST(LintRules, EarlyCheckinBeforeLaterUse) {
  const LintResult r = lint_src(R"(
    shared real A[8];
    parallel
      check_out_X A[0:7];
      A[0] = 1;
      check_in A[0:7];
      private x = A[0];
      barrier;
    end
  )");
  EXPECT_TRUE(has_rule(r, Rule::EarlyCheckin));
}

TEST(LintRules, CheckinBeforeBarrierOrRecheckoutIsNotEarly) {
  const LintResult r = lint_src(R"(
    shared real A[8];
    parallel
      check_out_X A[0:7];
      A[0] = 1;
      check_in A[0:7];
      barrier;
      check_out_S A[0:7];
      private x = A[0];
      check_in A[0:7];
      barrier;
      check_out_X A[0:7];
      A[1] = 1;
      check_in A[0:7];
      check_out_X A[0:7];
      A[2] = 2;
      check_in A[0:7];
      barrier;
    end
  )");
  EXPECT_FALSE(has_rule(r, Rule::EarlyCheckin))
      << "uses beyond a barrier or behind a re-checkout are covered";
}

TEST(LintRules, RedundantLoopCheckout) {
  const LintResult r = lint_src(R"(
    shared real A[8];
    parallel
      for i = 0 to 7 do
        check_out_S A[0:7];
        private x = A[i];
      od
      check_in A[0:7];
      barrier;
    end
  )");
  EXPECT_TRUE(has_rule(r, Rule::RedundantLoopCheckout));
}

TEST(LintRules, LoopVariantOrBarrierLoopCheckoutIsFine) {
  const LintResult r = lint_src(R"(
    shared real A[8];
    shared real B[8];
    parallel
      for i = 0 to 7 do
        check_out_X A[i:i];
        A[i] = i;
        check_in A[i:i];
      od
      for i = 0 to 7 do
        check_out_S B[0:7];
        private x = B[i];
        check_in B[0:7];
        barrier;
      od
    end
  )");
  EXPECT_FALSE(has_rule(r, Rule::RedundantLoopCheckout));
}

TEST(LintRules, PrefetchAfterFirstUse) {
  const LintResult r = lint_src(R"(
    shared real A[8];
    parallel
      check_out_X A[0:7];
      A[0] = 1;
      prefetch_X A[0:7];
      check_in A[0:7];
      barrier;
    end
  )");
  EXPECT_TRUE(has_rule(r, Rule::PrefetchAfterUse));
}

TEST(LintRules, PrefetchBeforeUseIsFine) {
  const LintResult r = lint_src(R"(
    shared real A[8];
    parallel
      prefetch_X A[0:7];
      check_out_X A[0:7];
      A[0] = 1;
      check_in A[0:7];
      barrier;
    end
  )");
  EXPECT_FALSE(has_rule(r, Rule::PrefetchAfterUse));
}

// --- the scripted section 6 defects ----------------------------------------

// Mp3d: check_in too early, the move phase still reads PART in-epoch.
constexpr const char* kMp3dEarlyCheckin = R"(
const N = 64;
shared real PART[N];
shared real CELL[N];
parallel
  private per = N / nprocs;
  private lo = pid * per;
  private hi = lo + per - 1;
  check_out_X PART[lo:hi];
  for i = lo to hi do
    PART[i] = PART[i] + 1;
  od
  check_in PART[lo:hi];
  check_out_X CELL[lo:hi];
  for i = lo to hi do
    CELL[i] = CELL[i] + PART[i];
  od
  check_in CELL[lo:hi];
  barrier;
end
)";

// Barnes: the position-update epoch was never annotated.
constexpr const char* kBarnesMissed = R"(
const N = 64;
shared real BODY[N];
shared real FORCE[N];
parallel
  private per = N / nprocs;
  private lo = pid * per;
  private hi = lo + per - 1;
  check_out_S BODY[0:N-1];
  check_out_X FORCE[lo:hi];
  for i = lo to hi do
    FORCE[i] = BODY[i] * 2;
  od
  check_in FORCE[lo:hi];
  check_in BODY[0:N-1];
  barrier;
  for i = lo to hi do
    BODY[i] = BODY[i] + FORCE[i];
  od
  barrier;
end
)";

// MM: the B panel is re-checked-out every row although loop-invariant.
constexpr const char* kMmRedundant = R"(
const N = 16;
shared real A[N, N];
shared real B[N, N];
shared real C[N, N];
parallel
  private rows = N / nprocs;
  private lo = pid * rows;
  private hi = lo + rows - 1;
  check_out_X C[lo:hi, 0:N-1];
  check_out_S A[lo:hi, 0:N-1];
  for i = lo to hi do
    check_out_S B[0:N-1, 0:N-1];
    for j = 0 to N - 1 do
      private acc = 0;
      for k = 0 to N - 1 do
        acc = acc + A[i, k] * B[k, j];
      od
      C[i, j] = acc;
    od
  od
  check_in B[0:N-1, 0:N-1];
  check_in A[lo:hi, 0:N-1];
  check_in C[lo:hi, 0:N-1];
  barrier;
end
)";

TEST(Section6Defects, Mp3dEarlyCheckin) {
  const LintResult r = lint_src(kMp3dEarlyCheckin);
  EXPECT_EQ(count_rule(r, Rule::EarlyCheckin), 1);
  EXPECT_TRUE(has_rule(r, Rule::MissedCheckoutRead));
  EXPECT_EQ(r.errors(), 0);
  EXPECT_EQ(r.exit_code(), 1);
}

TEST(Section6Defects, BarnesMissedAnnotation) {
  const LintResult r = lint_src(kBarnesMissed);
  EXPECT_EQ(count_rule(r, Rule::MissedCheckoutWrite), 1);
  EXPECT_EQ(count_rule(r, Rule::MissedCheckoutRead), 2);
  EXPECT_EQ(r.exit_code(), 2);
}

TEST(Section6Defects, MmRedundantLoopCheckout) {
  const LintResult r = lint_src(kMmRedundant);
  EXPECT_EQ(count_rule(r, Rule::RedundantLoopCheckout), 1);
  EXPECT_EQ(r.errors(), 0);
  EXPECT_EQ(r.exit_code(), 1);
  for (const Diagnostic& d : r.diagnostics) {
    if (d.rule == Rule::RedundantLoopCheckout) {
      EXPECT_EQ(d.array, "B");
    }
  }
}

TEST(Section6Defects, FixedVariantsAreClean) {
  // Each defect fixed the way the hint says: late check_in, annotated
  // second epoch, hoisted checkout.
  const LintResult mp3d = lint_src(R"(
    const N = 64;
    shared real PART[N];
    parallel
      private per = N / nprocs;
      private lo = pid * per;
      private hi = lo + per - 1;
      check_out_X PART[lo:hi];
      for i = lo to hi do
        PART[i] = PART[i] + 1;
      od
      private s = PART[lo];
      check_in PART[lo:hi];
      barrier;
    end
  )");
  EXPECT_TRUE(mp3d.diagnostics.empty());

  const LintResult mm = lint_src(R"(
    const N = 16;
    shared real B[N, N];
    parallel
      check_out_S B[0:N-1, 0:N-1];
      for i = 0 to N - 1 do
        private acc = B[i, 0];
      od
      check_in B[0:N-1, 0:N-1];
      barrier;
    end
  )");
  EXPECT_TRUE(mm.diagnostics.empty());
}

// --- annotator self-lint oracle --------------------------------------------

struct Pipeline {
  lang::Program prog;
  trace::Trace trace;
  std::unique_ptr<sim::Machine> machine;
  std::unique_ptr<lang::LoadedProgram> lp;
};

Pipeline trace_program(const std::string& src, std::uint32_t nodes) {
  Pipeline pl;
  pl.prog = lang::parse(src);
  sim::SimConfig cfg;
  cfg.nodes = nodes;
  cfg.trace_mode = true;
  pl.machine = std::make_unique<sim::Machine>(cfg);
  trace::TraceWriter w;
  pl.machine->set_trace_writer(&w);
  pl.lp = std::make_unique<lang::LoadedProgram>(pl.prog, *pl.machine);
  w.set_labels(pl.machine->heap().trace_labels());
  pl.machine->run([&](sim::Proc& p) { pl.lp->run_node(p); });
  pl.trace = w.take();
  return pl;
}

// The bundled example apps (examples/minipar/*.mp), embedded so the test
// binary has no run-directory dependence.
constexpr const char* kJacobi = R"(
const N = 16;
const P = 2;
const T = 4;
shared real U[N, N];
shared real V[N, N];
parallel
  if pid == 0 then
    for i = 0 to N - 1 do
      for j = 0 to N - 1 do
        U[i, j] = (i * 31 + j * 17) % 10;
        V[i, j] = U[i, j];
      od
    od
  fi
  barrier;
  private bs = N / P;
  private pi = (pid - pid % P) / P;
  private pj = pid % P;
  private li = max(pi * bs, 1);
  private ui = min(pi * bs + bs - 1, N - 2);
  private lj = max(pj * bs, 1);
  private uj = min(pj * bs + bs - 1, N - 2);
  for t = 1 to T do
    for i = li to ui do
      for j = lj to uj do
        V[i, j] = 0.25 * (U[i - 1, j] + U[i + 1, j] + U[i, j - 1] + U[i, j + 1]);
      od
    od
    barrier;
    for i = li to ui do
      for j = lj to uj do
        U[i, j] = V[i, j];
      od
    od
    barrier;
  od
end
)";

constexpr const char* kMatmul = R"(
const N = 16;
const PR = 4;
const PC = 2;
shared real A[N, N];
shared real B[N, N];
shared real C[N, N];
parallel
  if pid == 0 then
    for i = 0 to N - 1 do
      for j = 0 to N - 1 do
        A[i, j] = i + j;
        B[i, j] = i - j;
        C[i, j] = 0;
      od
    od
  fi
  barrier;
  private kb = (pid - pid % PC) / PC;
  private jb = pid % PC;
  private lk = kb * (N / PR);
  private uk = lk + N / PR - 1;
  private lj = jb * (N / PC);
  private uj = lj + N / PC - 1;
  for i = 0 to N - 1 do
    for k = lk to uk do
      private t = A[i, k];
      for j = lj to uj do
        C[i, j] = C[i, j] + t * B[k, j];
      od
    od
  od
  barrier;
end
)";

constexpr const char* kReduce = R"(
const N = 64;
shared real A[N];
shared real SUM[2];
parallel
  private per = N / nprocs;
  private lo = pid * per;
  for i = lo to lo + per - 1 do
    A[i] = i + 1;
  od
  barrier;
  private s = 0;
  for i = lo to lo + per - 1 do
    s = s + A[i];
  od
  SUM[0] = SUM[0] + s;
  lock SUM[1];
  SUM[1] = SUM[1] + s;
  unlock SUM[1];
  barrier;
end
)";

class SelfLintTest : public ::testing::TestWithParam<
                         std::tuple<const char*, std::uint32_t, cachier::Mode>> {};

TEST_P(SelfLintTest, GeneratedAnnotationsAreClean) {
  const auto& [src, nodes, mode] = GetParam();
  Pipeline pl = trace_program(src, nodes);
  const srcann::AnnotateResult res =
      srcann::annotate(pl.prog, pl.trace, *pl.lp,
                       pl.machine->config().cache, {.mode = mode});
  // Contract: Cachier's own output never contains a hard CICO violation.
  // Programmer placement may deliberately drop a check_in when it judges
  // termination will reclaim the region (matmul's B), which self-lint is
  // allowed to surface as a warning; the default performance placement must
  // be wholly diagnostic-free.
  EXPECT_EQ(res.lint.errors(), 0U)
      << "self-lint: " << rule_id(res.lint.diagnostics[0].rule) << " "
      << res.lint.diagnostics[0].message << "\n"
      << lang::unparse(res.program);
  if (mode == cachier::Mode::Performance) {
    EXPECT_TRUE(res.lint.diagnostics.empty());
  }
  // The unparse -> reparse round trip (the `cachier annotate | lint`
  // pipeline) must agree with the in-memory verdict.
  const LintResult reparsed = lint(lang::parse(lang::unparse(res.program)));
  EXPECT_EQ(reparsed.diagnostics.size(), res.lint.diagnostics.size());
  EXPECT_EQ(reparsed.errors(), 0U);
  if (mode == cachier::Mode::Performance) {
    EXPECT_TRUE(reparsed.diagnostics.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Apps, SelfLintTest,
    ::testing::Values(
        std::make_tuple(kJacobi, 4u, cachier::Mode::Performance),
        std::make_tuple(kJacobi, 4u, cachier::Mode::Programmer),
        std::make_tuple(kMatmul, 8u, cachier::Mode::Performance),
        std::make_tuple(kMatmul, 8u, cachier::Mode::Programmer),
        std::make_tuple(kReduce, 8u, cachier::Mode::Performance),
        std::make_tuple(kReduce, 8u, cachier::Mode::Programmer)));

// --- diagnostics plumbing ---------------------------------------------------

TEST(Diagnostics, DeterministicOrderAndDedup) {
  const LintResult a = lint_src(kBarnesMissed);
  const LintResult b = lint_src(kBarnesMissed);
  ASSERT_EQ(a.diagnostics.size(), b.diagnostics.size());
  for (std::size_t i = 0; i < a.diagnostics.size(); ++i) {
    EXPECT_EQ(a.diagnostics[i].rule, b.diagnostics[i].rule);
    EXPECT_EQ(a.diagnostics[i].line, b.diagnostics[i].line);
    EXPECT_EQ(a.diagnostics[i].col, b.diagnostics[i].col);
    EXPECT_EQ(a.diagnostics[i].message, b.diagnostics[i].message);
  }
  // Sorted by (line, col, ...).
  for (std::size_t i = 1; i < a.diagnostics.size(); ++i) {
    const auto& p = a.diagnostics[i - 1];
    const auto& q = a.diagnostics[i];
    EXPECT_LE(std::tie(p.line, p.col), std::tie(q.line, q.col));
  }
}

TEST(Diagnostics, RuleIdsAreStable) {
  EXPECT_EQ(rule_id(Rule::MissedCheckoutWrite), "CICO001");
  EXPECT_EQ(rule_id(Rule::EarlyCheckin), "CICO007");
  EXPECT_EQ(rule_id(Rule::RedundantLoopCheckout), "CICO008");
  EXPECT_EQ(rule_id(Rule::PrefetchAfterUse), "CICO009");
  EXPECT_STREQ(rule_name(Rule::EarlyCheckin), "early-checkin");
}

TEST(Diagnostics, JsonDocumentShapeAndRoundTrip) {
  const LintResult r = lint_src(kMp3dEarlyCheckin);
  const obs::Json doc = lint_json("mp3d.mp", r);
  ASSERT_NE(doc.find("schema_version"), nullptr);
  EXPECT_EQ(doc.find("schema_version")->as_u64(),
            static_cast<std::uint64_t>(kLintSchemaVersion));
  EXPECT_EQ(doc.find("generator")->as_string(), "cachier-lint");
  EXPECT_EQ(doc.find("file")->as_string(), "mp3d.mp");
  const obs::Json* summary = doc.find("summary");
  ASSERT_NE(summary, nullptr);
  EXPECT_EQ(summary->find("errors")->as_u64(), 0u);
  EXPECT_EQ(summary->find("warnings")->as_u64(),
            static_cast<std::uint64_t>(r.warnings()));
  EXPECT_EQ(summary->find("exit")->as_u64(), 1u);
  const obs::Json* diags = doc.find("diagnostics");
  ASSERT_NE(diags, nullptr);
  ASSERT_EQ(diags->size(), r.diagnostics.size());
  const obs::Json& first = diags->at(0);
  ASSERT_NE(first.find("rule"), nullptr);
  EXPECT_EQ(first.find("rule")->as_string(),
            rule_id(r.diagnostics[0].rule));
  EXPECT_EQ(first.find("line")->as_u64(),
            static_cast<std::uint64_t>(r.diagnostics[0].line));
  // parse(dump) is the identity (the obs::Json determinism contract).
  const std::string text = doc.dump_string();
  EXPECT_EQ(obs::Json::parse(text).dump_string(), text);
}

TEST(Diagnostics, JsonIsDiffableWithCachierDiff) {
  const obs::Json base = lint_json("a.mp", lint_src(kMp3dEarlyCheckin));
  const obs::Json same = lint_json("a.mp", lint_src(kMp3dEarlyCheckin));
  const obs::ToleranceSet tol;
  const obs::DiffResult identical = obs::diff_reports(base, same, tol);
  EXPECT_EQ(identical.outcome, obs::DiffOutcome::Identical);
  // A defect fixed -> the diff flags the change (regression gate trips
  // in whichever direction the goldens move).
  const obs::Json fixed = lint_json("a.mp", lint_src(kBarnesMissed));
  const obs::DiffResult changed = obs::diff_reports(base, fixed, tol);
  EXPECT_EQ(changed.outcome, obs::DiffOutcome::Regression);
  EXPECT_FALSE(changed.divergences.empty());
}

TEST(Diagnostics, TextListingFormat) {
  std::ostringstream os;
  print_text(os, "prog.mp", lint_src(kMmRedundant));
  const std::string out = os.str();
  EXPECT_NE(out.find("prog.mp:"), std::string::npos);
  EXPECT_NE(out.find("warning: [CICO008]"), std::string::npos);
  EXPECT_NE(out.find("hint: hoist the directive"), std::string::npos);
  EXPECT_NE(out.find("0 error(s), 1 warning(s)"), std::string::npos);
}

}  // namespace
}  // namespace cico::analysis
