// Affine range solver tests: const folding, the c + p*pid normal form,
// semantic region keys (the CICO004 fix anchor), and the Interval hull
// domain's join/widen/arithmetic contracts.
#include "cico/analysis/affine.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cico/analysis/typestate.hpp"
#include "cico/lang/parser.hpp"

namespace cico::analysis {
namespace {

/// Directive refs of the parallel body, in program order.
std::vector<const lang::ArrayRef*> directive_refs(const lang::Program& p) {
  std::vector<const lang::ArrayRef*> out;
  for (const auto& s : p.body) {
    if (s->kind == lang::StmtKind::Directive && s->ref) out.push_back(s->ref.get());
  }
  return out;
}

TEST(ConstEnvTest, FoldsChainedConsts) {
  const lang::Program p = lang::parse(R"(
    const N = 16;
    const M = N / 2;
    const K = M + N;
    shared real A[N];
    parallel
      barrier;
    end
  )");
  const ConstEnv env = ConstEnv::from(p);
  EXPECT_EQ(env.consts.at("N"), 16);
  EXPECT_EQ(env.consts.at("M"), 8);
  EXPECT_EQ(env.consts.at("K"), 24);
}

TEST(AffineTest, FoldsConstAndPidForms) {
  const lang::Program p = lang::parse(R"(
    const N = 16;
    shared real A[N];
    parallel
      check_out_X A[0:N - 1];
      check_out_X A[pid * 4:pid * 4 + 3];
      check_out_X A[N - N:N / 2];
      barrier;
    end
  )");
  const ConstEnv env = ConstEnv::from(p);
  const auto refs = directive_refs(p);
  ASSERT_EQ(refs.size(), 3u);

  const auto hi0 = eval_affine(*refs[0]->ranges[0].hi, env);  // N - 1
  ASSERT_TRUE(hi0.has_value());
  EXPECT_EQ(*hi0, (Affine{15, 0}));

  const auto lo1 = eval_affine(*refs[1]->ranges[0].lo, env);  // pid * 4
  const auto hi1 = eval_affine(*refs[1]->ranges[0].hi, env);  // pid * 4 + 3
  ASSERT_TRUE(lo1.has_value());
  ASSERT_TRUE(hi1.has_value());
  EXPECT_EQ(*lo1, (Affine{0, 4}));
  EXPECT_EQ(*hi1, (Affine{3, 4}));

  const auto lo2 = eval_affine(*refs[2]->ranges[0].lo, env);  // N - N
  ASSERT_TRUE(lo2.has_value());
  EXPECT_EQ(*lo2, (Affine{0, 0}));
}

TEST(AffineTest, RegionKeysCompareSemantically) {
  const lang::Program p = lang::parse(R"(
    const N = 16;
    shared real A[N];
    shared real B[N, N];
    parallel
      check_out_X A[0:N - 1];
      check_out_X A[0:15];
      check_out_X A[0:7];
      check_out_X B[pid * 4:pid * 4 + 3, 0:N - 1];
      check_out_X B[pid * 4:3 + pid * 4, 0:15];
      barrier;
    end
  )");
  const ConstEnv env = ConstEnv::from(p);
  const auto refs = directive_refs(p);
  ASSERT_EQ(refs.size(), 5u);
  // Two spellings of the same region agree; a different extent differs.
  EXPECT_EQ(region_key(*refs[0], env), region_key(*refs[1], env));
  EXPECT_NE(region_key(*refs[0], env), region_key(*refs[2], env));
  // Per-node affine slices agree across spellings, in both dims.
  EXPECT_EQ(region_key(*refs[3], env), region_key(*refs[4], env));
}

TEST(AffineTest, NonAffineBoundsFallBackToTextConservatively) {
  const lang::Program p = lang::parse(R"(
    const N = 16;
    shared real A[N];
    parallel
      check_out_X A[A[0]:A[0]];
      check_out_X A[A[0]:A[0]];
      check_out_X A[A[1]:A[1]];
      barrier;
    end
  )");
  const ConstEnv env = ConstEnv::from(p);
  const auto refs = directive_refs(p);
  ASSERT_EQ(refs.size(), 3u);
  // Identical text still matches; different text never does (even if the
  // runtime values could coincide -- the fallback is conservative).
  EXPECT_EQ(region_key(*refs[0], env), region_key(*refs[1], env));
  EXPECT_NE(region_key(*refs[0], env), region_key(*refs[2], env));
}

// CICO004 end to end: the re-checkout of the SAME region spelled
// differently is caught; a different slice is not.
TEST(AffineTest, DoubleCheckoutSeesThroughSpelling) {
  const LintResult same = lint(lang::parse(R"(
    const N = 16;
    shared real A[N];
    parallel
      check_out_X A[0:N - 1];
      A[0] = 1;
      check_out_X A[0:15];
      check_in A[0:N - 1];
      barrier;
    end
  )"));
  bool found = false;
  for (const auto& d : same.diagnostics) {
    found = found || d.rule == Rule::DoubleCheckout;
  }
  EXPECT_TRUE(found);

  const LintResult diff = lint(lang::parse(R"(
    const N = 16;
    shared real A[N];
    parallel
      check_out_X A[0:7];
      A[0] = 1;
      check_out_X A[8:N - 1];
      check_in A[0:N - 1];
      barrier;
    end
  )"));
  for (const auto& d : diff.diagnostics) {
    EXPECT_NE(d.rule, Rule::DoubleCheckout) << d.message;
  }
}

// --- Interval hull domain ---------------------------------------------------

TEST(IntervalTest, JoinIsConvexHullWithEmptyIdentity) {
  const Interval a = Interval::of(1, 4);
  const Interval b = Interval::of(8, 9);
  const Interval j = a.join(b);
  EXPECT_EQ(j.lo, 1);
  EXPECT_EQ(j.hi, 9);
  EXPECT_EQ(Interval{}.join(a), a);
  EXPECT_EQ(a.join(Interval{}), a);
  EXPECT_TRUE(a.subset_of(j));
  EXPECT_TRUE(b.subset_of(j));
}

TEST(IntervalTest, WidenJumpsGrowingBoundsToInfinity) {
  const Interval a = Interval::of(0, 4);
  const Interval grown = Interval::of(0, 5);
  const Interval w = a.widen(grown);
  EXPECT_EQ(w.lo, 0);          // stable bound keeps its value
  EXPECT_TRUE(w.hi > 1e300);   // grown bound jumps to +inf
  // A stable chain needs no widening.
  EXPECT_EQ(a.widen(a), a);
}

TEST(IntervalTest, ArithmeticIsHullCorrect) {
  const Interval a = Interval::of(2, 3);
  const Interval b = Interval::of(-1, 4);
  const Interval sum = a.add(b);
  EXPECT_EQ(sum.lo, 1);
  EXPECT_EQ(sum.hi, 7);
  const Interval prod = a.mul(b);
  EXPECT_EQ(prod.lo, -3);
  EXPECT_EQ(prod.hi, 12);
  // Division by a zero-straddling interval is Top, not garbage.
  EXPECT_TRUE(a.div(b).is_top());
  const Interval neg = b.neg();
  EXPECT_EQ(neg.lo, -4);
  EXPECT_EQ(neg.hi, 1);
  // Empty operands propagate.
  EXPECT_TRUE(Interval{}.add(a).empty());
}

TEST(IntervalTest, MinMaxClamp) {
  const Interval a = Interval::of(0, 10);
  const Interval lo = a.max_with(Interval::point(3));
  EXPECT_EQ(lo.lo, 3);
  EXPECT_EQ(lo.hi, 10);
  const Interval hi = a.min_with(Interval::point(7));
  EXPECT_EQ(hi.lo, 0);
  EXPECT_EQ(hi.hi, 7);
}

}  // namespace
}  // namespace cico::analysis
