#include "cico/trace/trace.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <sstream>

#include "cico/common/varint.hpp"

namespace cico::trace {
namespace {

TEST(TraceWriterTest, RecordsAndEpochs) {
  TraceWriter w;
  w.record_miss(0, MissKind::ReadMiss, 0x100, 8, 5, 0);
  w.record_miss(1, MissKind::WriteMiss, 0x200, 8, 6, 0);
  w.record_barrier(0, 9, 1000, 0);
  w.record_barrier(1, 9, 1000, 0);
  w.end_epoch();
  w.record_miss(0, MissKind::WriteFault, 0x100, 8, 7, 1);
  Trace t = w.take();
  EXPECT_EQ(t.misses.size(), 3u);
  EXPECT_EQ(t.barriers.size(), 2u);
  EXPECT_EQ(t.num_epochs(), 2u);
}

TEST(TraceWriterTest, DeduplicatesWithinEpoch) {
  // WWT collected misses in a per-epoch hash table: identical events in
  // the same epoch collapse to one record.
  TraceWriter w;
  for (int i = 0; i < 10; ++i) {
    w.record_miss(0, MissKind::ReadMiss, 0x100, 8, 5, 0);
  }
  w.end_epoch();
  w.record_miss(0, MissKind::ReadMiss, 0x100, 8, 5, 1);  // new epoch: kept
  Trace t = w.take();
  EXPECT_EQ(t.misses.size(), 2u);
}

TEST(TraceWriterTest, DistinctKindsAreDistinctRecords) {
  TraceWriter w;
  w.record_miss(0, MissKind::ReadMiss, 0x100, 8, 5, 0);
  w.record_miss(0, MissKind::WriteFault, 0x100, 8, 5, 0);
  Trace t = w.take();
  EXPECT_EQ(t.misses.size(), 2u);
}

TEST(TraceTest, RegionLookupManyLabelsBinarySearch) {
  Trace t;
  for (int i = 0; i < 100; ++i) {
    t.labels.push_back(RegionLabel{"r" + std::to_string(i),
                                   0x1000 + static_cast<Addr>(i) * 0x100, 0x80,
                                   true});
  }
  for (int i = 0; i < 100; ++i) {
    const Addr base = 0x1000 + static_cast<Addr>(i) * 0x100;
    ASSERT_NE(t.region_of(base + 0x7f), nullptr);
    EXPECT_EQ(t.region_of(base + 0x7f)->label, "r" + std::to_string(i));
    EXPECT_EQ(t.region_of(base + 0x80), nullptr);  // gap between regions
  }
}

TEST(TraceTest, OverlappingLabelsThrow) {
  // region_of used to silently return the first of several overlapping
  // labels in declaration order; overlap is now a reported data error.
  Trace t;
  t.labels.push_back(RegionLabel{"A", 0x1000, 0x200, true});
  t.labels.push_back(RegionLabel{"B", 0x1100, 0x80, true});
  try {
    (void)t.region_of(0x1100);
    FAIL() << "expected overlap to throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("overlapping"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("'A'"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("'B'"), std::string::npos);
  }
}

TEST(TraceTest, ZeroLengthLabelDoesNotOverlapOrMatch) {
  Trace t;
  t.labels.push_back(RegionLabel{"empty", 0x1000, 0, true});
  t.labels.push_back(RegionLabel{"real", 0x1000, 0x100, true});
  ASSERT_NE(t.region_of(0x1000), nullptr);
  EXPECT_EQ(t.region_of(0x1000)->label, "real");
}

TEST(TraceTest, RegionWrappingAddressSpaceThrows) {
  Trace t;
  t.labels.push_back(RegionLabel{"huge", ~Addr{0} - 8, 0x100, true});
  EXPECT_THROW(t.validate_labels(), std::runtime_error);
}

TEST(TraceTest, RegionLookup) {
  Trace t;
  t.labels.push_back(RegionLabel{"A", 0x1000, 0x100, true});
  t.labels.push_back(RegionLabel{"B", 0x2000, 0x80, false});
  ASSERT_NE(t.region_of(0x1000), nullptr);
  EXPECT_EQ(t.region_of(0x1000)->label, "A");
  EXPECT_EQ(t.region_of(0x10ff)->label, "A");
  EXPECT_EQ(t.region_of(0x1100), nullptr);
  EXPECT_EQ(t.region_of(0x2040)->label, "B");
  EXPECT_EQ(t.region_of(0x0), nullptr);
}

TEST(TraceIoTest, TextRoundTrip) {
  TraceWriter w;
  w.set_labels({RegionLabel{"A", 0x1000, 256, true},
                RegionLabel{"tree", 0x2000, 512, false}});
  w.record_miss(3, MissKind::ReadMiss, 0x1008, 8, 11, 0);
  w.record_miss(7, MissKind::WriteMiss, 0x1010, 4, 12, 0);
  w.record_barrier(3, 2, 555, 0);
  w.end_epoch();
  w.record_miss(3, MissKind::WriteFault, 0x2008, 8, 13, 1);
  Trace t = w.take();

  std::stringstream ss;
  save_text(t, ss);
  Trace back = load_text(ss);

  EXPECT_EQ(back.misses, t.misses);
  EXPECT_EQ(back.barriers, t.barriers);
  EXPECT_EQ(back.labels, t.labels);
}

TEST(TraceIoTest, BinaryRoundTrip) {
  TraceWriter w;
  w.set_labels({RegionLabel{"A", 0x1000, 256, true},
                RegionLabel{"tree", 0x2000, 512, false}});
  for (int i = 0; i < 100; ++i) {
    w.record_miss(i % 8, static_cast<MissKind>(i % 3),
                  0x1000 + static_cast<Addr>(i) * 8, 8, 11 + i % 5, i / 25);
    if (i % 25 == 24) {
      w.record_barrier(0, 2, 100 * i, i / 25);
      w.end_epoch();
    }
  }
  Trace t = w.take();
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  save_binary(t, ss);
  Trace back = load_binary(ss);
  EXPECT_EQ(back.misses, t.misses);
  EXPECT_EQ(back.barriers, t.barriers);
  EXPECT_EQ(back.labels, t.labels);
}

TEST(TraceIoTest, BinaryIsSmallerThanText) {
  TraceWriter w;
  for (int i = 0; i < 1000; ++i) {
    w.record_miss(i % 32, MissKind::ReadMiss, 0x100000 + static_cast<Addr>(i) * 8, 8,
                  1000 + i, 0);
  }
  Trace t = w.take();
  std::stringstream txt, bin(std::ios::in | std::ios::out | std::ios::binary);
  save_text(t, txt);
  save_binary(t, bin);
  EXPECT_LT(bin.str().size(), txt.str().size());
}

TEST(TraceIoTest, BinaryRejectsCorruption) {
  std::stringstream bad1("not binary at all");
  EXPECT_THROW(load_binary(bad1), std::runtime_error);
  // Truncated stream after a valid header.
  Trace t;
  t.misses.push_back(MissRecord{0, 0, MissKind::ReadMiss, 0x10, 8, 1});
  std::stringstream full(std::ios::in | std::ios::out | std::ios::binary);
  save_binary(t, full);
  const std::string bytes = full.str();
  std::stringstream cut(bytes.substr(0, bytes.size() - 4),
                        std::ios::in | std::ios::binary);
  EXPECT_THROW(load_binary(cut), std::runtime_error);
}

TEST(TraceIoTest, LabelsWithSpacesRoundTrip) {
  // `ls >> r.label` used to truncate "my array" at the space and shift
  // every numeric field by one token.
  Trace t;
  t.labels.push_back(RegionLabel{"my array", 0x1000, 256, true});
  t.labels.push_back(RegionLabel{"tab\there", 0x2000, 128, false});
  t.labels.push_back(RegionLabel{"back\\slash", 0x3000, 64, true});
  t.labels.push_back(RegionLabel{"", 0x4000, 32, true});
  std::stringstream ss;
  save_text(t, ss);
  const Trace back = load_text(ss);
  EXPECT_EQ(back.labels, t.labels);
}

TEST(TraceIoTest, RejectsBadHeader) {
  std::stringstream ss("not a trace\n");
  try {
    (void)load_text(ss);
    FAIL() << "expected bad header to throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 1"), std::string::npos);
  }
}

TEST(TraceIoTest, RejectsMalformedRecord) {
  std::stringstream ss("cico-trace v1\nM 1 2\n");
  EXPECT_THROW(load_text(ss), std::runtime_error);
}

TEST(TraceIoTest, RejectsUnknownTag) {
  std::stringstream ss("cico-trace v1\nZ 1 2 3\n");
  EXPECT_THROW(load_text(ss), std::runtime_error);
}

TEST(TraceIoTest, RejectsOutOfRangeMissKind) {
  // static_cast<MissKind>(kind) used to accept any integer here.
  std::stringstream ss("cico-trace v1\nM 0 0 3 4096 8 1\n");
  try {
    (void)load_text(ss);
    FAIL() << "expected bad kind to throw";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("line 2"), std::string::npos) << msg;
    EXPECT_NE(msg.find("miss kind"), std::string::npos) << msg;
  }
}

TEST(TraceIoTest, RejectsTrailingJunkOnRecordLine) {
  std::stringstream ss("cico-trace v1\nB 0 0 1 555 junk\n");
  EXPECT_THROW(load_text(ss), std::runtime_error);
}

TEST(TraceIoTest, RejectsNumericGarbageWithLineNumber) {
  std::stringstream ss("cico-trace v1\nB 0 0 1 555\nM 1 0 1 0x10 8 2\n");
  try {
    (void)load_text(ss);
    FAIL() << "expected hex address to throw (format is decimal)";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos)
        << e.what();
  }
}

TEST(TraceIoTest, RejectsNegativeField) {
  std::stringstream ss("cico-trace v1\nM 0 -1 1 4096 8 2\n");
  EXPECT_THROW(load_text(ss), std::runtime_error);
}

TEST(TraceIoTest, RejectsOverlappingLabelsOnLoad) {
  std::stringstream ss(
      "cico-trace v1\nL A 4096 512 1\nL B 4352 512 1\n");
  EXPECT_THROW(load_text(ss), std::runtime_error);
}

TEST(TraceIoTest, RejectsBadLabelEscape) {
  std::stringstream ss("cico-trace v1\nL bad\\q 4096 64 1\n");
  EXPECT_THROW(load_text(ss), std::runtime_error);
}

TEST(TraceIoTest, RejectsTruncatedVarint) {
  // A varint whose continuation bit promises more bytes than the stream
  // has must be reported as truncation, not silently zero-extended.
  Trace t;
  for (int i = 0; i < 4; ++i) {
    t.misses.push_back(
        MissRecord{0, 0, MissKind::ReadMiss, 0xfedcba9876543210ULL, 8, 1});
  }
  std::stringstream full(std::ios::in | std::ios::out | std::ios::binary);
  save_binary(t, full);
  const std::string bytes = full.str();
  // Cut inside the final record's varint fields.
  std::stringstream cut(bytes.substr(0, bytes.size() - 3),
                        std::ios::in | std::ios::binary);
  EXPECT_THROW(load_binary(cut), std::runtime_error);
}

// --- hostile binary inputs (mirrors the hostile text suite above) ----------
//
// The binary loader used to static_cast 64-bit varints into 32-bit fields
// and accept non-minimal LEB128, so two different byte streams could decode
// to the same trace -- fatal for content addressing.  Every malformed
// stream must fail with a `trace:`-prefixed error.

/// Minimal-length LEB128 of v, as raw bytes.
std::string enc(std::uint64_t v) {
  std::ostringstream ss;
  common::put_varint(ss, v);
  return ss.str();
}

std::string bin_magic() { return "cicotrc1"; }

/// Asserts that load_binary rejects `bytes` with a `trace:`-prefixed
/// message containing `needle`.
void expect_binary_error(const std::string& bytes, const std::string& needle) {
  std::stringstream ss(bytes, std::ios::in | std::ios::binary);
  try {
    (void)load_binary(ss);
    FAIL() << "expected rejection (" << needle << ")";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_EQ(msg.rfind("trace:", 0), 0u) << msg;
    EXPECT_NE(msg.find(needle), std::string::npos) << msg;
  }
}

TEST(TraceBinaryHostileTest, RejectsNonCanonicalVarint) {
  // 0x80 0x00 decodes to 0 but is two bytes: a second spelling of the
  // same value, which the canonical codec must reject.
  const std::string bytes =
      bin_magic() + std::string("\x80\x00", 2);  // nlabels = non-canonical 0
  expect_binary_error(bytes, "non-canonical varint");
}

TEST(TraceBinaryHostileTest, RejectsVarintOverflowBitsAtShift63) {
  // Ten bytes with a tenth group above 1 carry bits past bit 63.
  const std::string bytes =
      bin_magic() + std::string(9, '\xff') + std::string(1, '\x7f');
  expect_binary_error(bytes, "overflows 64 bits");
}

TEST(TraceBinaryHostileTest, RejectsElevenByteVarint) {
  const std::string bytes =
      bin_magic() + std::string(10, '\x80') + std::string(1, '\x01');
  expect_binary_error(bytes, "overflows 64 bits");
}

TEST(TraceBinaryHostileTest, RejectsOutOfRangeMissFields) {
  const std::uint64_t too_big = 0x1'0000'0000ULL;  // > uint32 max
  const auto miss_with = [&](int field) {
    std::string b = bin_magic() + enc(0) + enc(1);  // no labels, one miss
    const std::uint64_t fields[] = {0, 0, 0, 0x1000, 8, 1};
    for (int i = 0; i < 6; ++i) b += enc(i == field ? too_big : fields[i]);
    b += enc(0);  // no barriers
    return b;
  };
  expect_binary_error(miss_with(0), "epoch out of range");
  expect_binary_error(miss_with(1), "node out of range");
  expect_binary_error(miss_with(4), "size out of range");
  expect_binary_error(miss_with(5), "pc out of range");
}

TEST(TraceBinaryHostileTest, RejectsOutOfRangeBarrierFields) {
  const std::uint64_t too_big = 0x1'0000'0000ULL;
  const auto barrier_with = [&](int field) {
    std::string b = bin_magic() + enc(0) + enc(0) + enc(1);
    const std::uint64_t fields[] = {0, 0, 7, 555};
    for (int i = 0; i < 4; ++i) b += enc(i == field ? too_big : fields[i]);
    return b;
  };
  expect_binary_error(barrier_with(0), "epoch out of range");
  expect_binary_error(barrier_with(1), "node out of range");
  expect_binary_error(barrier_with(2), "barrier pc out of range");
}

TEST(TraceBinaryHostileTest, RejectsBadMissKind) {
  std::string b = bin_magic() + enc(0) + enc(1);
  b += enc(0) + enc(0) + enc(3) + enc(0x1000) + enc(8) + enc(1);
  b += enc(0);
  expect_binary_error(b, "bad miss kind");
}

TEST(TraceBinaryHostileTest, RejectsRegularFlagAboveOne) {
  std::string b = bin_magic() + enc(1);
  b += enc(1) + "A" + enc(0x1000) + enc(64) + enc(2);  // regular = 2
  expect_binary_error(b, "regular flag");
}

TEST(TraceBinaryHostileTest, RejectsTrailingJunk) {
  Trace t;
  t.misses.push_back(MissRecord{0, 0, MissKind::ReadMiss, 0x10, 8, 1});
  std::stringstream full(std::ios::in | std::ios::out | std::ios::binary);
  save_binary(t, full);
  expect_binary_error(full.str() + "x", "trailing junk");
}

TEST(TraceBinaryHostileTest, EveryStrictPrefixIsRejected) {
  // Counts precede their records, so truncation at ANY byte offset is
  // detectable -- no prefix may quietly decode to a shorter trace.
  TraceWriter w;
  w.set_labels({RegionLabel{"A", 0x1000, 256, true}});
  w.record_miss(0, MissKind::ReadMiss, 0x1008, 8, 11, 0);
  w.record_barrier(0, 2, 555, 0);
  w.end_epoch();
  w.record_miss(1, MissKind::WriteMiss, 0x1010, 4, 12, 1);
  Trace t = w.take();
  std::stringstream full(std::ios::in | std::ios::out | std::ios::binary);
  save_binary(t, full);
  const std::string bytes = full.str();
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    std::stringstream ss(bytes.substr(0, cut),
                         std::ios::in | std::ios::binary);
    EXPECT_THROW((void)load_binary(ss), std::runtime_error)
        << "prefix of " << cut << " bytes decoded";
  }
}

TEST(TraceTest, NumEpochsOverflowAtEpochIdMax) {
  // `max_epoch + 1` used to wrap to 0 when a record sat at EpochId max.
  Trace t;
  t.misses.push_back(MissRecord{std::numeric_limits<EpochId>::max(), 0,
                                MissKind::ReadMiss, 0x10, 8, 1});
  try {
    (void)t.num_epochs();
    FAIL() << "expected overflow to throw";
  } catch (const std::runtime_error& e) {
    EXPECT_EQ(std::string(e.what()).rfind("trace:", 0), 0u) << e.what();
  }
  // One below the limit is representable.
  t.misses[0].epoch = std::numeric_limits<EpochId>::max() - 1;
  EXPECT_EQ(t.num_epochs(), std::numeric_limits<EpochId>::max());
}

TEST(TraceTest, CanonicalizeSortsAndPreservesMultiset) {
  Trace t;
  t.misses.push_back(MissRecord{1, 0, MissKind::ReadMiss, 0x20, 8, 2});
  t.misses.push_back(MissRecord{0, 1, MissKind::WriteMiss, 0x10, 4, 1});
  t.misses.push_back(MissRecord{0, 0, MissKind::ReadMiss, 0x30, 8, 3});
  t.barriers.push_back(BarrierRecord{1, 0, 9, 100});
  t.barriers.push_back(BarrierRecord{0, 1, 9, 50});
  t.barriers.push_back(BarrierRecord{0, 0, 9, 50});
  canonicalize(t);
  EXPECT_EQ(t.misses[0].epoch, 0u);
  EXPECT_EQ(t.misses[0].node, 0u);
  EXPECT_EQ(t.misses[1].node, 1u);
  EXPECT_EQ(t.misses[2].epoch, 1u);
  EXPECT_EQ(t.barriers[0].node, 0u);
  EXPECT_EQ(t.barriers[1].node, 1u);
  EXPECT_EQ(t.barriers[2].epoch, 1u);
  EXPECT_EQ(t.misses.size(), 3u);
  EXPECT_EQ(t.barriers.size(), 3u);
}

}  // namespace
}  // namespace cico::trace
