#include "cico/trace/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace cico::trace {
namespace {

TEST(TraceWriterTest, RecordsAndEpochs) {
  TraceWriter w;
  w.record_miss(0, MissKind::ReadMiss, 0x100, 8, 5, 0);
  w.record_miss(1, MissKind::WriteMiss, 0x200, 8, 6, 0);
  w.record_barrier(0, 9, 1000, 0);
  w.record_barrier(1, 9, 1000, 0);
  w.end_epoch();
  w.record_miss(0, MissKind::WriteFault, 0x100, 8, 7, 1);
  Trace t = w.take();
  EXPECT_EQ(t.misses.size(), 3u);
  EXPECT_EQ(t.barriers.size(), 2u);
  EXPECT_EQ(t.num_epochs(), 2u);
}

TEST(TraceWriterTest, DeduplicatesWithinEpoch) {
  // WWT collected misses in a per-epoch hash table: identical events in
  // the same epoch collapse to one record.
  TraceWriter w;
  for (int i = 0; i < 10; ++i) {
    w.record_miss(0, MissKind::ReadMiss, 0x100, 8, 5, 0);
  }
  w.end_epoch();
  w.record_miss(0, MissKind::ReadMiss, 0x100, 8, 5, 1);  // new epoch: kept
  Trace t = w.take();
  EXPECT_EQ(t.misses.size(), 2u);
}

TEST(TraceWriterTest, DistinctKindsAreDistinctRecords) {
  TraceWriter w;
  w.record_miss(0, MissKind::ReadMiss, 0x100, 8, 5, 0);
  w.record_miss(0, MissKind::WriteFault, 0x100, 8, 5, 0);
  Trace t = w.take();
  EXPECT_EQ(t.misses.size(), 2u);
}

TEST(TraceTest, RegionLookup) {
  Trace t;
  t.labels.push_back(RegionLabel{"A", 0x1000, 0x100, true});
  t.labels.push_back(RegionLabel{"B", 0x2000, 0x80, false});
  ASSERT_NE(t.region_of(0x1000), nullptr);
  EXPECT_EQ(t.region_of(0x1000)->label, "A");
  EXPECT_EQ(t.region_of(0x10ff)->label, "A");
  EXPECT_EQ(t.region_of(0x1100), nullptr);
  EXPECT_EQ(t.region_of(0x2040)->label, "B");
  EXPECT_EQ(t.region_of(0x0), nullptr);
}

TEST(TraceIoTest, TextRoundTrip) {
  TraceWriter w;
  w.set_labels({RegionLabel{"A", 0x1000, 256, true},
                RegionLabel{"tree", 0x2000, 512, false}});
  w.record_miss(3, MissKind::ReadMiss, 0x1008, 8, 11, 0);
  w.record_miss(7, MissKind::WriteMiss, 0x1010, 4, 12, 0);
  w.record_barrier(3, 2, 555, 0);
  w.end_epoch();
  w.record_miss(3, MissKind::WriteFault, 0x2008, 8, 13, 1);
  Trace t = w.take();

  std::stringstream ss;
  save_text(t, ss);
  Trace back = load_text(ss);

  EXPECT_EQ(back.misses, t.misses);
  EXPECT_EQ(back.barriers, t.barriers);
  EXPECT_EQ(back.labels, t.labels);
}

TEST(TraceIoTest, BinaryRoundTrip) {
  TraceWriter w;
  w.set_labels({RegionLabel{"A", 0x1000, 256, true},
                RegionLabel{"tree", 0x2000, 512, false}});
  for (int i = 0; i < 100; ++i) {
    w.record_miss(i % 8, static_cast<MissKind>(i % 3),
                  0x1000 + static_cast<Addr>(i) * 8, 8, 11 + i % 5, i / 25);
    if (i % 25 == 24) {
      w.record_barrier(0, 2, 100 * i, i / 25);
      w.end_epoch();
    }
  }
  Trace t = w.take();
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  save_binary(t, ss);
  Trace back = load_binary(ss);
  EXPECT_EQ(back.misses, t.misses);
  EXPECT_EQ(back.barriers, t.barriers);
  EXPECT_EQ(back.labels, t.labels);
}

TEST(TraceIoTest, BinaryIsSmallerThanText) {
  TraceWriter w;
  for (int i = 0; i < 1000; ++i) {
    w.record_miss(i % 32, MissKind::ReadMiss, 0x100000 + static_cast<Addr>(i) * 8, 8,
                  1000 + i, 0);
  }
  Trace t = w.take();
  std::stringstream txt, bin(std::ios::in | std::ios::out | std::ios::binary);
  save_text(t, txt);
  save_binary(t, bin);
  EXPECT_LT(bin.str().size(), txt.str().size());
}

TEST(TraceIoTest, BinaryRejectsCorruption) {
  std::stringstream bad1("not binary at all");
  EXPECT_THROW(load_binary(bad1), std::runtime_error);
  // Truncated stream after a valid header.
  Trace t;
  t.misses.push_back(MissRecord{0, 0, MissKind::ReadMiss, 0x10, 8, 1});
  std::stringstream full(std::ios::in | std::ios::out | std::ios::binary);
  save_binary(t, full);
  const std::string bytes = full.str();
  std::stringstream cut(bytes.substr(0, bytes.size() - 4),
                        std::ios::in | std::ios::binary);
  EXPECT_THROW(load_binary(cut), std::runtime_error);
}

TEST(TraceIoTest, RejectsBadHeader) {
  std::stringstream ss("not a trace\n");
  EXPECT_THROW(load_text(ss), std::runtime_error);
}

TEST(TraceIoTest, RejectsMalformedRecord) {
  std::stringstream ss("cico-trace v1\nM 1 2\n");
  EXPECT_THROW(load_text(ss), std::runtime_error);
}

TEST(TraceIoTest, RejectsUnknownTag) {
  std::stringstream ss("cico-trace v1\nZ 1 2 3\n");
  EXPECT_THROW(load_text(ss), std::runtime_error);
}

}  // namespace
}  // namespace cico::trace
