// cico::kern equivalence suite.
//
// The kernel contract is "every dispatch level computes bit-identical
// results".  This suite enforces it two ways:
//   * raw-kernel equivalence -- every Ops entry point, each available
//     level against the scalar reference, over randomized word arrays
//     (including n=0 and non-multiple-of-vector-width tails);
//   * container equivalence -- BlockSet driven through randomized set
//     algebra against a std::set oracle, re-run under every available
//     level via the set_level test hook.
// Plus the word-boundary / empty / full edge cases the dense layout is
// most likely to get wrong, and the StampSet / NodeMask units.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <set>
#include <vector>

#include "cico/kern/bitset.hpp"
#include "cico/kern/kernels.hpp"
#include "cico/kern/nodemask.hpp"
#include "cico/kern/stampset.hpp"

namespace cico::kern {
namespace {

std::vector<Level> available_levels() {
  std::vector<Level> ls;
  for (Level l : {Level::Scalar, Level::AVX2, Level::NEON}) {
    if (level_available(l)) ls.push_back(l);
  }
  return ls;
}

/// RAII: force a dispatch level for one test body, restore on exit.
class ScopedLevel {
 public:
  explicit ScopedLevel(Level l) : prev_(set_level(l)) {}
  ~ScopedLevel() { set_level(prev_); }

 private:
  Level prev_;
};

std::vector<std::uint64_t> random_words(std::mt19937_64& rng, std::size_t n,
                                        bool sparse) {
  std::vector<std::uint64_t> w(n);
  for (auto& x : w) {
    x = rng();
    if (sparse) x &= rng();  // bias toward zero words so find_nonzero walks
  }
  return w;
}

// ---------------------------------------------------------------------------
// Raw kernels: each available level against the scalar reference.
// ---------------------------------------------------------------------------

TEST(Kernels, AllLevelsMatchScalarOnRandomArrays) {
  std::mt19937_64 rng(0xC1C0);
  const Ops& ref = scalar_ops();
  for (Level l : available_levels()) {
    SCOPED_TRACE(level_name(l));
    ScopedLevel scope(l);
    const Ops& o = ops();
    ASSERT_EQ(o.level, l);
    // Sizes straddle the AVX2 (4-word) and NEON (2-word) strides.
    for (std::size_t n : {0U, 1U, 2U, 3U, 4U, 5U, 7U, 8U, 9U, 15U, 16U, 17U,
                          31U, 64U, 100U}) {
      for (int trial = 0; trial < 8; ++trial) {
        const auto a = random_words(rng, n, trial % 2 == 0);
        const auto b = random_words(rng, n, trial % 2 == 1);

        auto d1 = a, d2 = a;
        ref.bor(d1.data(), b.data(), n);
        o.bor(d2.data(), b.data(), n);
        EXPECT_EQ(d1, d2) << "bor n=" << n;

        d1 = a; d2 = a;
        ref.band(d1.data(), b.data(), n);
        o.band(d2.data(), b.data(), n);
        EXPECT_EQ(d1, d2) << "band n=" << n;

        d1 = a; d2 = a;
        ref.bandnot(d1.data(), b.data(), n);
        o.bandnot(d2.data(), b.data(), n);
        EXPECT_EQ(d1, d2) << "bandnot n=" << n;

        EXPECT_EQ(ref.popcount(a.data(), n), o.popcount(a.data(), n))
            << "popcount n=" << n;
        EXPECT_EQ(ref.equal(a.data(), b.data(), n),
                  o.equal(a.data(), b.data(), n))
            << "equal n=" << n;
        EXPECT_TRUE(o.equal(a.data(), a.data(), n)) << "self-equal n=" << n;
        EXPECT_EQ(ref.find_nonzero(a.data(), n), o.find_nonzero(a.data(), n))
            << "find_nonzero n=" << n;

        if (n > 0) {
          // Key present (some random position) and key absent.
          const std::uint64_t present = a[rng() % n];
          EXPECT_EQ(ref.find_u64(a.data(), n, present),
                    o.find_u64(a.data(), n, present))
              << "find_u64 present n=" << n;
        }
        EXPECT_EQ(ref.find_u64(a.data(), n, 0xDEAD'BEEF'F00D'CAFEULL),
                  o.find_u64(a.data(), n, 0xDEAD'BEEF'F00D'CAFEULL))
            << "find_u64 absent n=" << n;
      }
    }
  }
}

TEST(Kernels, EqualDetectsSingleBitDifferenceAtEveryPosition) {
  for (Level l : available_levels()) {
    SCOPED_TRACE(level_name(l));
    ScopedLevel scope(l);
    const Ops& o = ops();
    std::vector<std::uint64_t> a(9, 0x5555'5555'5555'5555ULL);
    for (std::size_t i = 0; i < a.size(); ++i) {
      auto b = a;
      b[i] ^= 1ULL << (i * 7 % 64);
      EXPECT_FALSE(o.equal(a.data(), b.data(), a.size())) << "word " << i;
    }
  }
}

TEST(Kernels, FindNonzeroAllZeroReturnsN) {
  for (Level l : available_levels()) {
    ScopedLevel scope(l);
    const std::vector<std::uint64_t> z(13, 0);
    EXPECT_EQ(ops().find_nonzero(z.data(), z.size()), z.size());
    // First nonzero at every position, including vector-tail positions.
    for (std::size_t i = 0; i < z.size(); ++i) {
      auto a = z;
      a[i] = 1;
      EXPECT_EQ(ops().find_nonzero(a.data(), a.size()), i)
          << level_name(l) << " word " << i;
    }
  }
}

TEST(Kernels, FindU64ReturnsFirstMatch) {
  for (Level l : available_levels()) {
    ScopedLevel scope(l);
    std::vector<std::uint64_t> a = {7, 3, 9, 3, 1, 3};
    EXPECT_EQ(ops().find_u64(a.data(), a.size(), 3), 1U) << level_name(l);
    EXPECT_EQ(ops().find_u64(a.data(), a.size(), 7), 0U);
    EXPECT_EQ(ops().find_u64(a.data(), a.size(), 42), a.size());
    EXPECT_EQ(ops().find_u64(a.data(), 0, 7), 0U);  // empty row
  }
}

TEST(Kernels, SetLevelRejectsUnavailableAndRestores) {
  const Level before = active_level();
  bool all = true;
  for (Level l : {Level::Scalar, Level::AVX2, Level::NEON}) {
    all = all && level_available(l);
  }
  if (!all) {
    // At least one level is absent on every real host (AVX2 xor NEON).
    for (Level l : {Level::AVX2, Level::NEON}) {
      if (!level_available(l)) {
        EXPECT_THROW(set_level(l), std::invalid_argument);
      }
    }
  }
  EXPECT_EQ(active_level(), before);
  EXPECT_TRUE(level_available(Level::Scalar));
}

// ---------------------------------------------------------------------------
// BlockSet vs std::set oracle, per level.
// ---------------------------------------------------------------------------

std::set<std::uint64_t> to_std(const BlockSet& s) {
  return {s.begin(), s.end()};
}

TEST(BlockSet, RandomizedAlgebraMatchesStdSetUnderEveryLevel) {
  for (Level l : available_levels()) {
    SCOPED_TRACE(level_name(l));
    ScopedLevel scope(l);
    std::mt19937_64 rng(0xB10C + static_cast<unsigned>(l));
    for (int trial = 0; trial < 40; ++trial) {
      BlockSet x, y;
      std::set<std::uint64_t> rx, ry;
      // Keys straddle several words and start away from zero so growth
      // has to move base_ both directions.
      std::uniform_int_distribution<std::uint64_t> key(900, 1500);
      for (int i = 0; i < 120; ++i) {
        const std::uint64_t k = key(rng);
        switch (rng() % 4) {
          case 0: x.insert(k); rx.insert(k); break;
          case 1: y.insert(k); ry.insert(k); break;
          case 2: x.erase(k); rx.erase(k); break;
          default: y.erase(k); ry.erase(k); break;
        }
      }
      ASSERT_EQ(to_std(x), rx);
      ASSERT_EQ(to_std(y), ry);
      ASSERT_EQ(x.size(), rx.size());

      BlockSet u = x, i = x, d = x;
      u |= y;
      i &= y;
      d -= y;
      std::set<std::uint64_t> ru = rx, ri, rd;
      ru.insert(ry.begin(), ry.end());
      std::set_intersection(rx.begin(), rx.end(), ry.begin(), ry.end(),
                            std::inserter(ri, ri.end()));
      std::set_difference(rx.begin(), rx.end(), ry.begin(), ry.end(),
                          std::inserter(rd, rd.end()));
      EXPECT_EQ(to_std(u), ru);
      EXPECT_EQ(to_std(i), ri);
      EXPECT_EQ(to_std(d), rd);
      EXPECT_EQ(u.size(), ru.size());
      EXPECT_EQ(i.size(), ri.size());
      EXPECT_EQ(d.size(), rd.size());
      EXPECT_EQ(x == y, rx == ry);

      // Iteration is ascending (plan writers rely on it).
      std::vector<std::uint64_t> order(u.begin(), u.end());
      EXPECT_TRUE(std::is_sorted(order.begin(), order.end()));
    }
  }
}

TEST(BlockSet, WordBoundaryEdges) {
  for (Level l : available_levels()) {
    SCOPED_TRACE(level_name(l));
    ScopedLevel scope(l);
    BlockSet s;
    const std::uint64_t edges[] = {0, 63, 64, 65, 127, 128};
    for (std::uint64_t e : edges) EXPECT_TRUE(s.insert(e));
    for (std::uint64_t e : edges) {
      EXPECT_TRUE(s.contains(e)) << e;
      EXPECT_FALSE(s.insert(e)) << e;  // duplicate insert reports false
    }
    EXPECT_FALSE(s.contains(1));
    EXPECT_FALSE(s.contains(62));
    EXPECT_FALSE(s.contains(126));
    EXPECT_FALSE(s.contains(129));
    EXPECT_EQ(s.size(), 6U);
    EXPECT_EQ(to_std(s), std::set<std::uint64_t>(std::begin(edges),
                                                 std::end(edges)));
    EXPECT_EQ(s.erase(64), 1U);
    EXPECT_EQ(s.erase(64), 0U);
    EXPECT_FALSE(s.contains(64));
    EXPECT_EQ(s.size(), 5U);
  }
}

TEST(BlockSet, EmptyAndFullSets) {
  BlockSet e;
  EXPECT_TRUE(e.empty());
  EXPECT_EQ(e.size(), 0U);
  EXPECT_EQ(e.begin(), e.end());
  EXPECT_FALSE(e.contains(0));

  // Algebra with an empty operand.
  BlockSet s{10, 20, 30};
  BlockSet u = s; u |= e;
  BlockSet i = s; i &= e;
  BlockSet d = s; d -= e;
  EXPECT_EQ(u, s);
  EXPECT_TRUE(i.empty());
  EXPECT_EQ(d, s);
  BlockSet i2 = e; i2 &= s;
  EXPECT_TRUE(i2.empty());

  // A fully-populated word span.
  BlockSet full;
  for (std::uint64_t v = 64; v < 320; ++v) full.insert(v);
  EXPECT_EQ(full.size(), 256U);
  std::uint64_t expect = 64;
  for (const std::uint64_t v : full) EXPECT_EQ(v, expect++);
  EXPECT_EQ(expect, 320U);
  full -= full;  // NOLINT: self-subtraction empties
  EXPECT_TRUE(full.empty());
}

TEST(BlockSet, DisjointRangesUnionAcrossGrowth) {
  BlockSet lo{5};
  BlockSet hi{100000};
  lo |= hi;
  EXPECT_EQ(to_std(lo), (std::set<std::uint64_t>{5, 100000}));
  BlockSet i = lo;
  i &= hi;
  EXPECT_EQ(to_std(i), (std::set<std::uint64_t>{100000}));
  EXPECT_EQ(lo == hi, false);
  // Equality across different internal bases.
  BlockSet a{70};
  BlockSet b;
  b.insert(500);
  b.insert(70);
  b.erase(500);
  EXPECT_EQ(a, b);
}

TEST(BlockSet, ClearKeepsWorking) {
  BlockSet s{1, 2, 3};
  s.clear();
  EXPECT_TRUE(s.empty());
  EXPECT_FALSE(s.contains(2));
  s.insert(7);
  EXPECT_EQ(to_std(s), (std::set<std::uint64_t>{7}));
}

// ---------------------------------------------------------------------------
// StampSet
// ---------------------------------------------------------------------------

TEST(StampSet, InsertContainsClear) {
  StampSet s;
  EXPECT_FALSE(s.contains(42));
  s.insert(42);
  s.insert(40);   // grows downward
  s.insert(100);  // grows upward
  EXPECT_TRUE(s.contains(42));
  EXPECT_TRUE(s.contains(40));
  EXPECT_TRUE(s.contains(100));
  EXPECT_FALSE(s.contains(41));
  EXPECT_FALSE(s.contains(39));
  EXPECT_FALSE(s.contains(101));
  s.clear();
  EXPECT_FALSE(s.contains(42));
  EXPECT_FALSE(s.contains(40));
  EXPECT_FALSE(s.contains(100));
  s.insert(42);
  EXPECT_TRUE(s.contains(42));
  EXPECT_FALSE(s.contains(100));  // older generation stays dead
}

TEST(StampSet, ManyClearCyclesStayCorrect) {
  StampSet s;
  for (std::uint64_t round = 0; round < 1000; ++round) {
    s.insert(round % 7);
    EXPECT_TRUE(s.contains(round % 7));
    EXPECT_FALSE(s.contains((round + 1) % 7));
    s.clear();
  }
}

// ---------------------------------------------------------------------------
// NodeMask -- including the >=64-node aliasing regression.
// ---------------------------------------------------------------------------

TEST(NodeMask, NodesBeyond64DoNotAliasOntoLowNodes) {
  // The bug this type replaced: `1ULL << (n % 64)` made node 64 and node 0
  // indistinguishable, so a writer at node 64 looked like a second access
  // by node 0.
  NodeMask m;
  m.set(64);
  EXPECT_TRUE(m.test(64));
  EXPECT_FALSE(m.test(0));
  EXPECT_TRUE(m.is_sole(64));
  EXPECT_FALSE(m.is_sole(0));
  EXPECT_EQ(m.count(), 1);

  m.set(0);
  EXPECT_EQ(m.count(), 2);
  EXPECT_FALSE(m.is_sole(0));
  EXPECT_FALSE(m.is_sole(64));

  NodeMask wide;
  wide.set(63);
  wide.set(64);
  wide.set(127);
  wide.set(128);
  wide.set(191);
  EXPECT_EQ(wide.count(), 5);
  for (std::uint32_t n : {63U, 64U, 127U, 128U, 191U}) EXPECT_TRUE(wide.test(n));
  for (std::uint32_t n : {0U, 62U, 65U, 126U, 129U, 190U, 192U}) {
    EXPECT_FALSE(wide.test(n)) << n;
  }
}

TEST(NodeMask, UnionHelpersIgnoreTrailingZeroSpill) {
  NodeMask a, b;
  a.set(3);
  b.set(3);
  b.set(200);  // allocate spill...
  NodeMask c;
  c.set(3);
  EXPECT_NE(a, b);
  // ...then make the spill all-zero again via an equality-relevant path:
  // masks with different hi_ allocations but identical bits must compare
  // equal and union identically.
  NodeMask zero_spill;
  zero_spill.set(100);
  NodeMask plain;
  EXPECT_EQ(NodeMask::count_union(zero_spill, plain), 1);
  EXPECT_TRUE(NodeMask::union_equals(zero_spill, plain, plain, zero_spill));
  EXPECT_FALSE(NodeMask::union_equals(zero_spill, plain, a, c));
  EXPECT_EQ(NodeMask::count_union(a, b), 2);
  EXPECT_EQ(NodeMask::count_union(a, c), 1);

  NodeMask u = a;
  u |= b;
  EXPECT_EQ(u.count(), 2);
  EXPECT_TRUE(u.test(3));
  EXPECT_TRUE(u.test(200));
  EXPECT_FALSE(u.any() && !a.any());
}

}  // namespace
}  // namespace cico::kern
