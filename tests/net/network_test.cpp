#include "cico/net/network.hpp"

#include <gtest/gtest.h>
#include <set>

namespace cico::net {
namespace {

TEST(NetworkTest, LatencyUniformExceptLocal) {
  CostModel cost;
  Stats stats(4);
  Network net(cost, stats);
  EXPECT_EQ(net.latency(0, 1), cost.net_hop);
  EXPECT_EQ(net.latency(3, 1), cost.net_hop);
  EXPECT_EQ(net.latency(2, 2), 0u);  // co-located directory slice
}

TEST(NetworkTest, SendAdvancesTimeAndCounts) {
  CostModel cost;
  Stats stats(4);
  Network net(cost, stats);
  const Cycle t = net.send(0, 1, MsgType::Request, 100);
  EXPECT_EQ(t, 100 + cost.net_hop);
  EXPECT_EQ(net.sent(MsgType::Request), 1u);
  EXPECT_EQ(stats.node(0, Stat::Messages), 1u);
  EXPECT_EQ(stats.node(1, Stat::Messages), 0u);  // charged to sender
}

TEST(NetworkTest, PerTypeAccounting) {
  CostModel cost;
  Stats stats(2);
  Network net(cost, stats);
  net.count(0, MsgType::Invalidate);
  net.count(0, MsgType::Invalidate);
  net.count(1, MsgType::Ack);
  net.send(0, 1, MsgType::DataReply, 0);
  EXPECT_EQ(net.sent(MsgType::Invalidate), 2u);
  EXPECT_EQ(net.sent(MsgType::Ack), 1u);
  EXPECT_EQ(net.sent(MsgType::DataReply), 1u);
  EXPECT_EQ(net.sent(MsgType::Recall), 0u);
  EXPECT_EQ(net.total_sent(), 4u);
}

TEST(NetworkTest, AllTypeNamesDistinct) {
  std::set<std::string_view> names;
  for (std::size_t i = 0; i < kMsgTypeCount; ++i) {
    EXPECT_TRUE(names.insert(msg_type_name(static_cast<MsgType>(i))).second);
  }
}

}  // namespace
}  // namespace cico::net
