// Per-application unit tests: configuration validation, result
// verification fidelity (the verifiers must actually catch corruption),
// and the documented hand-annotation behaviours.
#include <gtest/gtest.h>

#include "apps/barnes.hpp"
#include "apps/jacobi.hpp"
#include "apps/matmul.hpp"
#include "apps/mp3d.hpp"
#include "apps/ocean.hpp"
#include "apps/runner.hpp"
#include "apps/tomcatv.hpp"

namespace cico::apps {
namespace {

sim::SimConfig nodes(std::uint32_t n) {
  sim::SimConfig c;
  c.nodes = n;
  return c;
}

TEST(AppConfigTest, MatmulRejectsBadGrids) {
  MatMulConfig c;
  c.n = 33;  // not divisible by the 8x4 grid
  MatMul app(c, 1);
  sim::Machine m(nodes(32));
  EXPECT_THROW(app.setup(m, Variant::None), std::invalid_argument);

  MatMulConfig c2;
  c2.n = 32;
  MatMul app2(c2, 1);
  sim::Machine m2(nodes(16));  // nodes != prow*pcol
  EXPECT_THROW(app2.setup(m2, Variant::None), std::invalid_argument);
}

TEST(AppConfigTest, OceanRejectsOddOrTinyGrids) {
  {
    OceanConfig c;
    c.n = 65;
    Ocean app(c, 1);
    sim::Machine m(nodes(32));
    EXPECT_THROW(app.setup(m, Variant::None), std::invalid_argument);
  }
  {
    OceanConfig c;
    c.n = 16;  // < nodes
    Ocean app(c, 1);
    sim::Machine m(nodes(32));
    EXPECT_THROW(app.setup(m, Variant::None), std::invalid_argument);
  }
}

TEST(AppConfigTest, JacobiRequiresAlignedSquareGrid) {
  {
    JacobiConfig c;
    c.n = 30;  // not multiple of P
    c.p = 4;
    Jacobi app(c, 1);
    sim::Machine m(nodes(16));
    EXPECT_THROW(app.setup(m, Variant::None), std::invalid_argument);
  }
  {
    JacobiConfig c;
    c.n = 20;  // N/P == 5, not a multiple of 4 (block alignment)
    c.p = 4;
    Jacobi app(c, 1);
    sim::Machine m(nodes(16));
    EXPECT_THROW(app.setup(m, Variant::None), std::invalid_argument);
  }
  {
    JacobiConfig c;  // wrong node count
    Jacobi app(c, 1);
    sim::Machine m(nodes(8));
    EXPECT_THROW(app.setup(m, Variant::None), std::invalid_argument);
  }
}

TEST(AppVerifyTest, OceanVerifierCatchesCorruption) {
  OceanConfig c;
  c.n = 64;
  c.iters = 2;
  HarnessConfig hc;
  hc.sim.nodes = 32;
  // A healthy run verifies...
  {
    Harness h([c](std::uint64_t s) { return std::make_unique<Ocean>(c, s); },
              hc);
    EXPECT_TRUE(h.measure(Variant::None).verified);
  }
  // ...and the verifier is genuinely sensitive: an app whose body never
  // ran (its grid is still all zero) must fail against its reference.
  Ocean untouched(c, 12345);
  sim::Machine m3(hc.sim);
  untouched.setup(m3, Variant::None);
  EXPECT_FALSE(untouched.verify());
}

TEST(AppVerifyTest, RestructuredMatmulMatchesHostProduct) {
  MatMulConfig c;
  c.n = 32;
  c.racy = true;
  c.restructured = true;
  HarnessConfig hc;
  Harness h([c](std::uint64_t s) { return std::make_unique<MatMul>(c, s); },
            hc);
  const RunResult r = h.measure(Variant::None);
  EXPECT_TRUE(r.verified);
  EXPECT_GT(r.stat(Stat::LockAcquires), 0u);  // the section 5 merge locks
}

TEST(AppHandTest, MatmulHandHasRedundantCheckouts) {
  // Section 6: the hand version carries "a few unnecessary annotations" --
  // explicit check_out_S on reads the protocol would have serviced anyway.
  MatMulConfig c;
  c.n = 32;
  HarnessConfig hc;
  Harness h([c](std::uint64_t s) { return std::make_unique<MatMul>(c, s); },
            hc);
  const RunResult hand = h.measure(Variant::Hand);
  EXPECT_GT(hand.stat(Stat::CheckOutS), 0u);
  EXPECT_TRUE(hand.verified);
}

TEST(AppHandTest, HandPrefetchIsLateInMatmul) {
  // "In the hand-annotated version ... the prefetch annotations were
  // inappropriately placed": issued right before use, they complete late.
  MatMulConfig c;
  c.n = 32;
  HarnessConfig hc;
  Harness h([c](std::uint64_t s) { return std::make_unique<MatMul>(c, s); },
            hc);
  const RunResult pf = h.measure(Variant::HandPf);
  EXPECT_GT(pf.stat(Stat::PrefetchIssued), 0u);
  EXPECT_GT(pf.stat(Stat::PrefetchLate), 0u);
}

TEST(AppHandTest, Mp3dHandChecksInTooEarly) {
  Mp3dConfig c;
  c.molecules = 512;
  c.steps = 2;
  HarnessConfig hc;
  Harness h([c](std::uint64_t s) { return std::make_unique<Mp3d>(c, s); },
            hc);
  const RunResult none = h.measure(Variant::None);
  const RunResult hand = h.measure(Variant::Hand);
  // The premature check-ins force re-checkouts: hand does MORE read
  // misses than the unannotated run on its own molecule data.
  EXPECT_GT(hand.stat(Stat::ReadMisses), none.stat(Stat::ReadMisses));
}

TEST(AppHandTest, BarnesPrefetchRefusesIrregularRegions) {
  BarnesConfig c;
  c.bodies = 256;
  c.steps = 1;
  HarnessConfig hc;
  Harness h([c](std::uint64_t s) { return std::make_unique<Barnes>(c, s); },
            hc);
  sim::DirectivePlan plan =
      h.build_plan({.mode = cachier::Mode::Performance, .prefetch = true});
  const RunResult r = h.measure(Variant::CachierPf, &plan);
  // The tree and body-position regions are irregular; the only legal
  // prefetch targets are the (regular) velocity arrays.  The tree pool
  // alone spans ~2300 blocks and is touched every force epoch, so if the
  // planner prefetched it the count would be in the tens of thousands;
  // velocities bound it to a few hundred.
  EXPECT_LT(r.stat(Stat::PrefetchIssued), 1000u);
  EXPECT_TRUE(r.verified);
}

TEST(AppStatsTest, OceanEpochsMatchConfiguration) {
  OceanConfig c;
  c.n = 64;
  c.iters = 3;
  sim::Machine m(nodes(32));
  Ocean app(c, 7);
  app.setup(m, Variant::None);
  m.run([&](sim::Proc& p) { app.body(p); });
  // 1 init barrier + 2 per iteration.
  EXPECT_EQ(m.epochs_completed(), 1u + 2 * c.iters);
  EXPECT_TRUE(app.verify());
}

}  // namespace
}  // namespace cico::apps
