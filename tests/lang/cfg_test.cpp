#include "cico/lang/cfg.hpp"

#include <gtest/gtest.h>

#include "cico/lang/parser.hpp"

namespace cico::lang {
namespace {

TEST(CfgTest, LoopNesting) {
  Program p = parse(R"(
    shared real A[8];
    parallel
      for i = 0 to 7 do
        for j = 0 to 7 do
          A[0] = i + j;
        od
      od
    end
  )");
  Cfg cfg(p);
  ASSERT_EQ(cfg.loops().size(), 2u);
  const AstId outer = cfg.loops()[0];
  const AstId inner = cfg.loops()[1];
  EXPECT_EQ(cfg.loop_of(inner), outer);
  EXPECT_EQ(cfg.loop_of(outer), 0u);
  const AstId assign = p.body[0]->body[0]->body[0]->id;
  EXPECT_EQ(cfg.loop_of(assign), inner);
  EXPECT_EQ(cfg.depth_of(assign), 2);
  EXPECT_TRUE(cfg.nested_in(assign, outer));
  EXPECT_TRUE(cfg.nested_in(assign, inner));
  EXPECT_FALSE(cfg.nested_in(outer, inner));
}

TEST(CfgTest, BarriersRecordedInOrder) {
  Program p = parse(R"(
    parallel
      compute 1;
      barrier;
      compute 2;
      barrier;
    end
  )");
  Cfg cfg(p);
  ASSERT_EQ(cfg.barriers().size(), 2u);
  EXPECT_EQ(cfg.barriers()[0], p.body[1]->id);
  EXPECT_EQ(cfg.barriers()[1], p.body[3]->id);
}

TEST(CfgTest, LoopHasBackEdge) {
  Program p = parse("parallel for i = 0 to 3 do compute 1; od end");
  Cfg cfg(p);
  // Find the header block (contains the For stmt) and verify some block's
  // successor points back at it.
  const AstId loop = cfg.loops()[0];
  std::uint32_t header = 0;
  for (const auto& b : cfg.blocks()) {
    for (AstId s : b.stmts) {
      if (s == loop) header = b.id;
    }
  }
  bool back_edge = false;
  for (const auto& b : cfg.blocks()) {
    if (b.id == header) continue;
    for (std::uint32_t s : b.succ) {
      if (s == header) back_edge = true;
    }
  }
  EXPECT_TRUE(back_edge);
}

TEST(CfgTest, IfCreatesBranch) {
  Program p = parse(R"(
    parallel
      if pid == 0 then
        compute 1;
      else
        compute 2;
      fi
    end
  )");
  Cfg cfg(p);
  // The condition block must have two successors.
  const AstId if_id = p.body[0]->id;
  bool found = false;
  for (const auto& b : cfg.blocks()) {
    for (AstId s : b.stmts) {
      if (s == if_id) {
        EXPECT_EQ(b.succ.size(), 2u);
        found = true;
      }
    }
  }
  EXPECT_TRUE(found);
}

TEST(CfgTest, IfParentTracked) {
  Program p = parse(R"(
    parallel
      if pid == 0 then
        compute 1;
      fi
    end
  )");
  Cfg cfg(p);
  const AstId if_id = p.body[0]->id;
  const AstId inner = p.body[0]->body[0]->id;
  EXPECT_EQ(cfg.parent_of(inner), if_id);
  EXPECT_EQ(cfg.loop_of(inner), 0u);  // an If is not a loop
}

}  // namespace
}  // namespace cico::lang
