// Directive range semantics in the interpreter: slices, whole-row spans,
// 2-D rectangles (one contiguous span per row), and locks on elements.
#include <gtest/gtest.h>

#include "cico/lang/interp.hpp"
#include "cico/lang/parser.hpp"

namespace cico::lang {
namespace {

struct Ran {
  Program prog;
  std::unique_ptr<sim::Machine> m;
  std::unique_ptr<LoadedProgram> lp;
};

Ran run(const std::string& src, std::uint32_t nodes = 1) {
  Ran r;
  r.prog = parse(src);
  sim::SimConfig cfg;
  cfg.nodes = nodes;
  r.m = std::make_unique<sim::Machine>(cfg);
  r.lp = std::make_unique<LoadedProgram>(r.prog, *r.m);
  r.m->run([&](sim::Proc& p) { r.lp->run_node(p); });
  return r;
}

TEST(InterpRangeTest, OneDSliceCoversExactBlocks) {
  // A[0:15] = 16 doubles = 4 blocks.
  auto r = run(R"(
    shared real A[32];
    parallel
      check_out_X A[0:15];
    end
  )");
  EXPECT_EQ(r.m->stats().total(Stat::CheckOutX), 4u);
}

TEST(InterpRangeTest, SingleElementTouchesOneBlock) {
  auto r = run(R"(
    shared real A[32];
    parallel
      check_out_S A[5];
      check_in A[5];
    end
  )");
  EXPECT_EQ(r.m->stats().total(Stat::CheckOutS), 1u);
  EXPECT_EQ(r.m->stats().total(Stat::CheckIns), 1u);
}

TEST(InterpRangeTest, RowSliceOn2DArrayIsWholeRows) {
  // G is 4x8 (row = 8 doubles = 2 blocks); G[1:2] covers rows 1..2.
  auto r = run(R"(
    shared real G[4, 8];
    parallel
      check_out_X G[1:2];
    end
  )");
  EXPECT_EQ(r.m->stats().total(Stat::CheckOutX), 4u);
}

TEST(InterpRangeTest, RectangleIssuesPerRowSpans) {
  // G[0:3, 0:3]: 4 rows x (4 doubles = 1 block each) = 4 checkouts.
  auto r = run(R"(
    shared real G[4, 8];
    parallel
      check_out_X G[0:3, 0:3];
    end
  )");
  EXPECT_EQ(r.m->stats().total(Stat::CheckOutX), 4u);
}

TEST(InterpRangeTest, PidParameterizedDirectiveRanges) {
  // Each node checks out its own 8-element slice: 2 blocks per node.
  auto r = run(R"(
    const N = 32;
    shared real A[N];
    parallel
      private lo = pid * (N / nprocs);
      check_out_X A[lo : lo + N / nprocs - 1];
    end
  )", 4);
  EXPECT_EQ(r.m->stats().total(Stat::CheckOutX), 8u);
  for (NodeId n = 0; n < 4; ++n) {
    EXPECT_EQ(r.m->stats().node(n, Stat::CheckOutX), 2u);
  }
}

TEST(InterpRangeTest, EmptyOrBackwardRangeFails) {
  EXPECT_THROW(run(R"(
    shared real A[8];
    parallel
      check_in A[5:2];
    end
  )"), InterpError);
}

TEST(InterpRangeTest, OutOfBoundsRangeFails) {
  EXPECT_THROW(run(R"(
    shared real A[8];
    parallel
      check_out_S A[0:9];
    end
  )"), InterpError);
}

TEST(InterpRangeTest, LockOn2DElement) {
  auto r = run(R"(
    shared real G[4, 4];
    parallel
      lock G[2, 3];
      G[2, 3] = G[2, 3] + 1;
      unlock G[2, 3];
    end
  )", 4);
  EXPECT_DOUBLE_EQ(r.lp->value("G", 2, 3), 4.0);
  EXPECT_EQ(r.m->stats().total(Stat::LockAcquires), 4u);
}

TEST(InterpRangeTest, PostStoreNotInGrammarButPrefetchIs) {
  // prefetch_X/prefetch_S are statements; issue and verify counting.
  auto r = run(R"(
    shared real A[16];
    parallel
      prefetch_S A[0:15];
      compute 1000;
      private s = A[0] + A[8];
    end
  )");
  EXPECT_EQ(r.m->stats().total(Stat::PrefetchIssued), 4u);
  EXPECT_EQ(r.m->stats().total(Stat::ReadMisses), 0u);
}

}  // namespace
}  // namespace cico::lang
