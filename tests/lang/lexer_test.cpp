#include "cico/lang/lexer.hpp"

#include <gtest/gtest.h>

namespace cico::lang {
namespace {

TEST(LexerTest, KeywordsAndIdentifiers) {
  auto t = lex("shared real A for foo check_out_X pid");
  ASSERT_EQ(t.size(), 8u);  // 7 tokens + eof
  EXPECT_EQ(t[0].kind, Tok::KwShared);
  EXPECT_EQ(t[1].kind, Tok::KwReal);
  EXPECT_EQ(t[2].kind, Tok::Ident);
  EXPECT_EQ(t[2].text, "A");
  EXPECT_EQ(t[3].kind, Tok::KwFor);
  EXPECT_EQ(t[4].kind, Tok::Ident);
  EXPECT_EQ(t[5].kind, Tok::KwCheckOutX);
  EXPECT_EQ(t[6].kind, Tok::KwPid);
  EXPECT_EQ(t[7].kind, Tok::Eof);
}

TEST(LexerTest, Numbers) {
  auto t = lex("0 42 3.5 1e3 2.5e-2");
  EXPECT_DOUBLE_EQ(t[0].number, 0.0);
  EXPECT_DOUBLE_EQ(t[1].number, 42.0);
  EXPECT_DOUBLE_EQ(t[2].number, 3.5);
  EXPECT_DOUBLE_EQ(t[3].number, 1000.0);
  EXPECT_DOUBLE_EQ(t[4].number, 0.025);
}

TEST(LexerTest, OperatorsIncludingTwoChar) {
  auto t = lex("== != <= >= && || < > = + - * / % ! : ; , ( ) [ ]");
  const Tok want[] = {Tok::Eq,     Tok::Ne,     Tok::Le,      Tok::Ge,
                      Tok::AndAnd, Tok::OrOr,   Tok::Lt,      Tok::Gt,
                      Tok::Assign, Tok::Plus,   Tok::Minus,   Tok::Star,
                      Tok::Slash,  Tok::Percent, Tok::Not,    Tok::Colon,
                      Tok::Semicolon, Tok::Comma, Tok::LParen, Tok::RParen,
                      Tok::LBracket,  Tok::RBracket};
  for (std::size_t i = 0; i < std::size(want); ++i) {
    EXPECT_EQ(t[i].kind, want[i]) << i;
  }
}

TEST(LexerTest, CommentsAreSkipped) {
  auto t = lex("a # this is a comment\n b");
  ASSERT_EQ(t.size(), 3u);
  EXPECT_EQ(t[0].text, "a");
  EXPECT_EQ(t[1].text, "b");
  EXPECT_EQ(t[1].line, 2);
}

TEST(LexerTest, TracksLinesAndColumns) {
  auto t = lex("a\n  bb\n   c");
  EXPECT_EQ(t[0].line, 1);
  EXPECT_EQ(t[0].col, 1);
  EXPECT_EQ(t[1].line, 2);
  EXPECT_EQ(t[1].col, 3);
  EXPECT_EQ(t[2].line, 3);
  EXPECT_EQ(t[2].col, 4);
}

TEST(LexerTest, RejectsBadCharacters) {
  EXPECT_THROW(lex("a @ b"), ParseError);
}

}  // namespace
}  // namespace cico::lang
