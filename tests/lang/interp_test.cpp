#include "cico/lang/interp.hpp"

#include <gtest/gtest.h>

#include "cico/lang/parser.hpp"

namespace cico::lang {
namespace {

sim::SimConfig cfg(std::uint32_t nodes) {
  sim::SimConfig c;
  c.nodes = nodes;
  c.cache.size_bytes = 8192;
  return c;
}

/// Parses + runs a program; returns the LoadedProgram for inspection.
struct Ran {
  Program prog;
  std::unique_ptr<sim::Machine> m;
  std::unique_ptr<LoadedProgram> lp;
};

Ran run(const std::string& src, std::uint32_t nodes,
        const sim::DirectivePlan* plan = nullptr) {
  Ran r;
  r.prog = parse(src);
  r.m = std::make_unique<sim::Machine>(cfg(nodes));
  if (plan) r.m->set_plan(plan);
  r.lp = std::make_unique<LoadedProgram>(r.prog, *r.m);
  r.m->run([&](sim::Proc& p) { r.lp->run_node(p); });
  return r;
}

TEST(InterpTest, FillsArrayDeterministically) {
  auto r = run(R"(
    const N = 16;
    shared real A[N];
    parallel
      if pid == 0 then
        for i = 0 to N - 1 do
          A[i] = i * i;
        od
      fi
    end
  )", 2);
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_DOUBLE_EQ(r.lp->value("A", i), static_cast<double>(i * i));
  }
}

TEST(InterpTest, PidPartitionedWrites) {
  auto r = run(R"(
    const N = 16;
    shared real A[N];
    parallel
      private per = N / nprocs;
      private lo = pid * per;
      for i = lo to lo + per - 1 do
        A[i] = pid + 1;
      od
    end
  )", 4);
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_DOUBLE_EQ(r.lp->value("A", i), static_cast<double>(i / 4 + 1));
  }
}

TEST(InterpTest, TwoDArraysAndExpressions) {
  auto r = run(R"(
    const N = 4;
    shared real C[N, N];
    parallel
      if pid == 0 then
        for i = 0 to N - 1 do
          for j = 0 to N - 1 do
            C[i, j] = min(i, j) * 10 + max(i, j) + (i == j) * 100;
          od
        od
      fi
    end
  )", 2);
  EXPECT_DOUBLE_EQ(r.lp->value("C", 2, 2), 22.0 + 100.0);
  EXPECT_DOUBLE_EQ(r.lp->value("C", 1, 3), 13.0);
  EXPECT_DOUBLE_EQ(r.lp->value("C", 3, 1), 13.0);
}

TEST(InterpTest, BarriersMakeProducerConsumerDeterministic) {
  auto r = run(R"(
    const N = 8;
    shared real A[N];
    shared real B[N];
    parallel
      if pid == 0 then
        for i = 0 to N - 1 do
          A[i] = i + 1;
        od
      fi
      barrier;
      if pid == 1 then
        for i = 0 to N - 1 do
          B[i] = A[i] * 2;
        od
      fi
    end
  )", 2);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_DOUBLE_EQ(r.lp->value("B", i), 2.0 * (static_cast<double>(i) + 1));
  }
  EXPECT_EQ(r.m->epochs_completed(), 1u);
}

TEST(InterpTest, DirectivesExecute) {
  auto r = run(R"(
    const N = 8;
    shared real A[N];
    parallel
      if pid == 0 then
        check_out_X A[0:7];
        for i = 0 to N - 1 do
          A[i] = 1;
        od
        check_in A[0:7];
        prefetch_S A[0:7];
      fi
    end
  )", 2);
  EXPECT_EQ(r.m->stats().total(Stat::CheckOutX), 2u);  // 64 B = 2 blocks
  EXPECT_EQ(r.m->stats().total(Stat::CheckIns), 2u);
  EXPECT_EQ(r.m->stats().total(Stat::PrefetchIssued), 2u);
  EXPECT_EQ(r.m->stats().total(Stat::WriteMisses), 0u);  // checked out first
}

TEST(InterpTest, LocksSerializeIncrements) {
  auto r = run(R"(
    shared real A[1];
    parallel
      for i = 1 to 5 do
        lock A[0];
        A[0] = A[0] + 1;
        unlock A[0];
      od
    end
  )", 4);
  EXPECT_DOUBLE_EQ(r.lp->value("A", 0), 20.0);
}

TEST(InterpTest, ShortCircuitSkipsMemoryTraffic) {
  auto r = run(R"(
    shared real A[4];
    parallel
      if pid == 0 then
        private x = 0 && A[0];
        private y = 1 || A[1];
        A[2] = x + y;
      fi
    end
  )", 1);
  // Neither A[0] nor A[1] should have been loaded.
  EXPECT_EQ(r.m->stats().total(Stat::SharedLoads), 0u);
  EXPECT_DOUBLE_EQ(r.lp->value("A", 2), 1.0);
}

TEST(InterpTest, RuntimeErrors) {
  EXPECT_THROW(run("shared real A[4]; parallel A[9] = 1; end", 1),
               InterpError);
  EXPECT_THROW(run("parallel private x = nope; end", 1), InterpError);
  EXPECT_THROW(run("parallel B[0] = 1; end", 1), InterpError);
  EXPECT_THROW(run("parallel for i = 0 to 3 step 0 do od end", 1),
               InterpError);
}

TEST(InterpTest, PcMappingRoundTrips) {
  Program prog = parse("shared real A[4]; parallel A[0] = 1; end");
  sim::Machine m(cfg(1));
  LoadedProgram lp(prog, m);
  const AstId assign = prog.body[0]->id;
  const PcId pc = lp.pc_for(assign);
  EXPECT_NE(pc, kNoPc);
  EXPECT_EQ(lp.ast_for(pc), assign);
}

TEST(InterpTest, TraceRecordsMiniParAccesses) {
  Program prog = parse(R"(
    shared real A[8];
    parallel
      if pid == 0 then
        A[0] = 1;
      fi
      barrier;
      if pid == 1 then
        private x = A[0];
        A[1] = x;
      fi
    end
  )");
  sim::SimConfig c = cfg(2);
  c.trace_mode = true;
  sim::Machine m(c);
  trace::TraceWriter w;
  m.set_trace_writer(&w);
  LoadedProgram lp(prog, m);
  w.set_labels(m.heap().trace_labels());
  m.run([&](sim::Proc& p) { lp.run_node(p); });
  trace::Trace t = w.take();
  ASSERT_GE(t.misses.size(), 2u);
  // Every miss pc maps back to an AST node.
  for (const auto& ms : t.misses) {
    EXPECT_NE(lp.ast_for(ms.pc), 0u);
  }
}

}  // namespace
}  // namespace cico::lang
