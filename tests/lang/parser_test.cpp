#include "cico/lang/parser.hpp"

#include <gtest/gtest.h>

#include "cico/lang/unparse.hpp"

namespace cico::lang {
namespace {

constexpr const char* kProgram = R"(
const N = 8;
shared real A[N];
shared real C[N, N];
parallel
  private lo = pid * (N / nprocs);
  for i = 0 to N - 1 do
    A[i] = i * 2 + 1;
  od
  barrier;
  if pid == 0 then
    check_out_X C[0:3, 0];
    C[0, 0] = A[0];
    check_in C[0:3, 0];
  else
    compute 100;
  fi
  lock A[0];
  A[0] = A[0] + 1;
  unlock A[0];
  prefetch_S A[0:7];
end
)";

TEST(ParserTest, ParsesFullProgram) {
  Program p = parse(kProgram);
  EXPECT_EQ(p.decls.size(), 3u);
  EXPECT_EQ(p.decls[0]->kind, StmtKind::ConstDecl);
  EXPECT_EQ(p.decls[1]->kind, StmtKind::SharedDecl);
  EXPECT_EQ(p.decls[1]->dims.size(), 1u);
  EXPECT_EQ(p.decls[2]->dims.size(), 2u);
  ASSERT_GE(p.body.size(), 6u);
  EXPECT_EQ(p.body[0]->kind, StmtKind::Private);
  EXPECT_EQ(p.body[1]->kind, StmtKind::For);
  EXPECT_EQ(p.body[2]->kind, StmtKind::Barrier);
  EXPECT_EQ(p.body[3]->kind, StmtKind::If);
  EXPECT_EQ(p.body[3]->body[0]->kind, StmtKind::Directive);
  EXPECT_EQ(p.body[3]->body[0]->dir, sim::DirectiveKind::CheckOutX);
  EXPECT_EQ(p.body[3]->else_body.size(), 1u);
}

TEST(ParserTest, UnparseParseRoundTrip) {
  Program p1 = parse(kProgram);
  const std::string text1 = unparse(p1);
  Program p2 = parse(text1);
  const std::string text2 = unparse(p2);
  EXPECT_EQ(text1, text2);  // fixed point after one round
}

TEST(ParserTest, OperatorPrecedence) {
  Program p = parse("parallel private x = 1 + 2 * 3 - 4 / 2; end");
  EXPECT_EQ(unparse_expr(*p.body[0]->rhs), "1 + 2 * 3 - 4 / 2");
}

TEST(ParserTest, ParenthesesPreservedWhenNeeded) {
  Program p = parse("parallel private x = (1 + 2) * 3; end");
  EXPECT_EQ(unparse_expr(*p.body[0]->rhs), "(1 + 2) * 3");
}

TEST(ParserTest, ForWithStep) {
  Program p = parse("parallel for i = 1 to 9 step 2 do compute 1; od end");
  const Stmt& f = *p.body[0];
  ASSERT_NE(f.step, nullptr);
  EXPECT_DOUBLE_EQ(f.step->number, 2.0);
}

TEST(ParserTest, DirectiveRanges) {
  Program p = parse("parallel check_out_S A[1 : N - 1, pid]; end");
  const Stmt& d = *p.body[0];
  ASSERT_EQ(d.ref->ranges.size(), 2u);
  EXPECT_NE(d.ref->ranges[0].hi, nullptr);
  EXPECT_EQ(d.ref->ranges[1].hi, nullptr);
}

TEST(ParserTest, Errors) {
  EXPECT_THROW(parse("parallel"), ParseError);                  // no end
  EXPECT_THROW(parse("shared real A[4] parallel end"), ParseError);  // ';'
  EXPECT_THROW(parse("parallel x = ; end"), ParseError);        // bad expr
  EXPECT_THROW(parse("parallel for i = 1 to do od end"), ParseError);
  EXPECT_THROW(parse("garbage"), ParseError);
  EXPECT_THROW(parse("parallel end trailing"), ParseError);
}

TEST(ParserTest, AstIdsAreUnique) {
  Program p = parse(kProgram);
  std::set<AstId> seen;
  std::function<void(const std::vector<StmtPtr>&)> walk =
      [&](const std::vector<StmtPtr>& b) {
        for (const auto& s : b) {
          EXPECT_TRUE(seen.insert(s->id).second) << "dup stmt id " << s->id;
          walk(s->body);
          walk(s->else_body);
        }
      };
  walk(p.body);
  EXPECT_LT(*seen.rbegin(), p.next_id);
}

}  // namespace
}  // namespace cico::lang
