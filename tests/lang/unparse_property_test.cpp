// Property test: unparse . parse is the identity on unparsed text, for
// randomly generated expression trees and programs.  This pins down
// operator precedence/associativity in the printer against the parser.
#include <gtest/gtest.h>

#include "cico/common/rng.hpp"
#include <cmath>

#include "cico/lang/interp.hpp"
#include "cico/lang/parser.hpp"
#include "cico/lang/unparse.hpp"

namespace cico::lang {
namespace {

class ExprGen {
 public:
  explicit ExprGen(std::uint64_t seed) : rng_(seed) {}

  std::string gen(int depth) {
    if (depth <= 0) return leaf();
    switch (rng_.below(8)) {
      case 0: return leaf();
      case 1:
        return "-" + gen(0);  // unary minus binds a leaf
      case 2:
        return "(" + gen(depth - 1) + ")";
      case 3:
        return "min(" + gen(depth - 1) + ", " + gen(depth - 1) + ")";
      case 4:
        return "A[" + gen(depth - 1) + "]";
      default: {
        static const char* ops[] = {"+", "-", "*", "/", "%", "==", "!=",
                                    "<", "<=", ">", ">=", "&&", "||"};
        return gen(depth - 1) + " " + ops[rng_.below(13)] + " " +
               gen(depth - 1);
      }
    }
  }

 private:
  std::string leaf() {
    switch (rng_.below(4)) {
      case 0: return std::to_string(rng_.below(100));
      case 1: return "pid";
      case 2: return "nprocs";
      default: return "x";
    }
  }
  Rng rng_;
};

class UnparseRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(UnparseRoundTrip, FixedPointAfterOneUnparse) {
  ExprGen g(GetParam());
  for (int i = 0; i < 50; ++i) {
    const std::string src =
        "shared real A[64];\nparallel\n  private x = 1;\n  x = " +
        g.gen(4) + ";\nend\n";
    Program p1;
    ASSERT_NO_THROW(p1 = parse(src)) << src;
    const std::string t1 = unparse(p1);
    Program p2;
    ASSERT_NO_THROW(p2 = parse(t1)) << "reparse failed:\n" << t1;
    const std::string t2 = unparse(p2);
    EXPECT_EQ(t1, t2) << "not a fixed point:\n" << src;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, UnparseRoundTrip,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

TEST(UnparseValueTest, RoundTripPreservesEvaluation) {
  // Parse, unparse, reparse, run both: identical results.
  ExprGen g(99);
  for (int i = 0; i < 20; ++i) {
    // Guarded denominators aren't generated, so div-by-zero can produce
    // inf, which still compares equal across the two runs.
    const std::string src =
        "shared real A[64];\nparallel\n  private x = 3;\n  if pid == 0 "
        "then\n    A[pid] = " +
        g.gen(3) + ";\n  fi\nend\n";
    Program p1 = parse(src);
    Program p2 = parse(unparse(p1));

    // A generated subscript may be out of range; both runs must then fail
    // identically, so "threw" is part of the compared outcome.
    auto run = [](const Program& prog) -> std::pair<bool, double> {
      sim::SimConfig cfg;
      cfg.nodes = 2;
      sim::Machine m(cfg);
      LoadedProgram lp(prog, m);
      try {
        m.run([&](sim::Proc& p) { lp.run_node(p); });
      } catch (const InterpError&) {
        return {false, 0.0};
      }
      return {true, lp.value("A", 0)};
    };
    const auto [ok1, v1] = run(p1);
    const auto [ok2, v2] = run(p2);
    EXPECT_EQ(ok1, ok2) << src;
    if (ok1 && ok2) {
      if (std::isnan(v1)) {
        EXPECT_TRUE(std::isnan(v2));
      } else {
        EXPECT_EQ(v1, v2) << src;
      }
    }
  }
}

}  // namespace
}  // namespace cico::lang
