// In-process Server behavior tests: byte-identical cache hits,
// bounded-queue backpressure (shed clients get retry_after, never a
// hang), disconnect reclamation, deadline expiry, version-mismatch
// rejection, and graceful drain.  Uses the real Unix socket path through
// the real client where possible, and raw frames where the test needs to
// misbehave on purpose.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>

#include "cico/daemon/client.hpp"
#include "cico/daemon/protocol.hpp"
#include "cico/daemon/server.hpp"

namespace {

using namespace cico;
using namespace cico::daemon;
using namespace std::chrono_literals;

const char* kFastProgram =
    "const N = 64;\n"
    "shared real A[N];\n"
    "parallel\n"
    "  A[pid] = pid + 1;\n"
    "  barrier;\n"
    "end\n";

/// ~1.5s of simulated barrier rounds: long enough that deadlines and
/// backpressure races resolve deterministically, short enough for CI.
const char* kSlowProgram =
    "const N = 64;\n"
    "shared real A[N];\n"
    "parallel\n"
    "  for r = 1 to 400 do\n"
    "    for i = 0 to N - 1 do\n"
    "      A[pid] = A[pid] + 1;\n"
    "    od\n"
    "    barrier;\n"
    "  od\n"
    "end\n";

JobRequest make_req(const char* src, const std::string& cmd = "run") {
  JobRequest req;
  req.command = cmd;
  req.name = "server_test.mp";
  req.source = src;
  req.cfg.nodes = 4;
  return req;
}

/// A unique socket path per test (the daemon unlinks it on drain).
std::string sock_path(const char* tag) {
  return ::testing::TempDir() + "cachierd_" + tag + ".sock";
}

/// Counters are bumped just after the result frame is written, so a
/// client can observe its result a beat before the server's ledger does.
template <typename Cond>
bool eventually(Cond cond, std::chrono::milliseconds limit = 5000ms) {
  const auto give_up = std::chrono::steady_clock::now() + limit;
  while (!cond()) {
    if (std::chrono::steady_clock::now() >= give_up) return false;
    std::this_thread::sleep_for(5ms);
  }
  return true;
}

struct ServerFixture {
  ServerOptions opt;
  std::unique_ptr<Server> server;

  explicit ServerFixture(const char* tag, std::uint32_t workers = 2,
                         std::uint32_t queue = 8) {
    opt.socket_path = sock_path(tag);
    opt.workers = workers;
    opt.queue_limit = queue;
    opt.monitor_tick_ms = 10;
    ::unlink(opt.socket_path.c_str());
    server = std::make_unique<Server>(opt);
    server->start();
  }
  ~ServerFixture() {
    if (server != nullptr) {
      server->request_drain();
      server->join();
    }
  }

  ClientOptions client() const {
    ClientOptions c;
    c.socket_path = opt.socket_path;
    return c;
  }
};

/// Raw connection for tests that need to misbehave: returns a connected
/// fd (invalid on failure).
io::Fd raw_connect(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  io::Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) return fd;
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    fd.reset();
  }
  return fd;
}

/// Handshakes and submits on a raw connection; returns the connected fd.
io::Fd raw_submit(const std::string& path, const JobRequest& req) {
  io::Fd fd = raw_connect(path);
  EXPECT_TRUE(fd.valid());
  EXPECT_EQ(write_frame(fd.get(), hello_frame()), FrameStatus::Ok);
  obs::Json frame;
  EXPECT_EQ(read_frame(fd.get(), &frame, 5000), FrameStatus::Ok);
  EXPECT_EQ(frame_type(frame), "hello_ok");
  EXPECT_EQ(write_frame(fd.get(), submit_frame(req)), FrameStatus::Ok);
  return fd;
}

/// Reads frames until `type` arrives (or fails the test).
obs::Json raw_wait_for(int fd, std::string_view type, int timeout_ms = 20000) {
  obs::Json frame;
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(read_frame(fd, &frame, timeout_ms), FrameStatus::Ok)
        << "waiting for frame type " << type;
    if (frame_type(frame) == type) return frame;
  }
  ADD_FAILURE() << "never saw frame type " << type;
  return frame;
}

TEST(Server, FreshThenCachedAreByteIdentical) {
  ServerFixture f("cache");
  const JobRequest req = make_req(kFastProgram);
  const JobResult fresh = submit_job(f.client(), req);
  ASSERT_EQ(fresh.exit, 0) << fresh.error;
  EXPECT_FALSE(fresh.cached);
  const JobResult hit = submit_job(f.client(), req);
  EXPECT_TRUE(hit.cached);
  EXPECT_EQ(hit.out, fresh.out);
  EXPECT_EQ(hit.diags, fresh.diags);
  EXPECT_EQ(hit.report, fresh.report);
  EXPECT_EQ(hit.key, fresh.key);
  EXPECT_TRUE(eventually([&] {
    const Server::Counters c = f.server->counters();
    return c.cache_hits == 1 && c.completed == 2;
  }));
}

TEST(Server, DistinctConfigsDoNotShareCacheEntries) {
  ServerFixture f("cachecfg");
  JobRequest req = make_req(kFastProgram);
  const JobResult a = submit_job(f.client(), req);
  req.cfg.nodes = 8;
  const JobResult b = submit_job(f.client(), req);
  EXPECT_FALSE(b.cached);
  EXPECT_NE(a.key, b.key);
  EXPECT_NE(a.out, b.out);  // node count appears in the stats block
}

TEST(Server, SaturatedQueueShedsWithRetryAfterNotHang) {
  // One worker, queue limit one: a slow job occupies the worker, a second
  // fills the queue, the third MUST be shed with retry_after promptly.
  ServerFixture f("shed", /*workers=*/1, /*queue=*/1);
  io::Fd running = raw_submit(f.opt.socket_path, make_req(kSlowProgram));
  (void)raw_wait_for(running.get(), "status");  // queued
  JobRequest queued_req = make_req(kSlowProgram);
  queued_req.cfg.nodes = 8;  // distinct key so it cannot be served by cache
  io::Fd queued = raw_submit(f.opt.socket_path, queued_req);
  (void)raw_wait_for(queued.get(), "status");

  // Poll until the shed response arrives: admission of the two jobs above
  // is asynchronous, so the first probe(s) may still find a free slot.
  const auto give_up = std::chrono::steady_clock::now() + 10s;
  bool shed = false;
  while (!shed && std::chrono::steady_clock::now() < give_up) {
    JobRequest probe_req = make_req(kSlowProgram);
    probe_req.cfg.nodes = 16;
    io::Fd probe = raw_submit(f.opt.socket_path, probe_req);
    obs::Json frame;
    ASSERT_EQ(read_frame(probe.get(), &frame, 10000), FrameStatus::Ok);
    if (frame_type(frame) == "retry_after") {
      EXPECT_GT(frame.find("ms")->as_u64(), 0u);
      shed = true;
    } else {
      // The probe got admitted (a slot freed); it will be cancelled when
      // its fd closes here, freeing the slot again.
      std::this_thread::sleep_for(50ms);
    }
  }
  EXPECT_TRUE(shed) << "queue never reported saturation";
  EXPECT_TRUE(eventually([&] { return f.server->counters().shed >= 1; }));
}

TEST(Server, MidStreamDisconnectFreesTheWorkerSlot) {
  ServerFixture f("disc", /*workers=*/1, /*queue=*/4);
  {
    io::Fd doomed = raw_submit(f.opt.socket_path, make_req(kSlowProgram));
    (void)raw_wait_for(doomed.get(), "status");
  }  // fd closes: the client vanishes mid-stream
  // The monitor must notice the hangup, cancel the run, and free the
  // worker; a follow-up fast job then completes promptly.
  ClientOptions c = f.client();
  const JobResult r = submit_job(c, make_req(kFastProgram));
  EXPECT_EQ(r.exit, 0) << r.error;
  // The slot is reclaimed (no leak): in-flight drains to zero.
  const auto give_up = std::chrono::steady_clock::now() + 10s;
  while (f.server->jobs_in_flight() != 0 &&
         std::chrono::steady_clock::now() < give_up) {
    std::this_thread::sleep_for(20ms);
  }
  EXPECT_EQ(f.server->jobs_in_flight(), 0u);
  EXPECT_TRUE(eventually([&] { return f.server->counters().disconnects >= 1; }));
}

TEST(Server, DeadlineExpiryCancelsTheJobAndSaysSo) {
  ServerFixture f("deadline");
  JobRequest req = make_req(kSlowProgram);
  req.cfg.deadline_ms = 5;  // the slow program needs hundreds of ms
  const JobResult r = submit_job(f.client(), req);
  EXPECT_TRUE(r.cancelled);
  EXPECT_EQ(r.exit, 2);
  EXPECT_NE(r.error.find("deadline"), std::string::npos) << r.error;
  EXPECT_TRUE(eventually([&] { return f.server->counters().cancelled >= 1; }));
  // A cancelled result must never be served from cache: the same request
  // with a generous deadline runs fresh and succeeds.
  req.cfg.deadline_ms = 60000;
  const JobResult ok = submit_job(f.client(), req);
  EXPECT_EQ(ok.exit, 0) << ok.error;
  EXPECT_FALSE(ok.cached);
}

TEST(Server, PoisonedJobFailsAloneAndPoolKeepsServing) {
  ServerFixture f("poison");
  JobRequest bad = make_req("this is @@ not minipar $$\n");
  const JobResult r = submit_job(f.client(), bad);
  EXPECT_EQ(r.exit, 2);
  EXPECT_FALSE(r.error.empty());
  // Pool is still alive and serves the next job.
  const JobResult ok = submit_job(f.client(), make_req(kFastProgram));
  EXPECT_EQ(ok.exit, 0) << ok.error;
  EXPECT_TRUE(eventually([&] { return f.server->counters().failed >= 1; }));
}

TEST(Server, VersionMismatchIsRejectedAtHandshake) {
  ServerFixture f("vers");
  io::Fd fd = raw_connect(f.opt.socket_path);
  ASSERT_TRUE(fd.valid());
  obs::Json schemas = obs::Json::object();
  schemas.set("daemon_protocol",
              obs::Json::number(kDaemonProtocolVersion + 7));
  obs::Json hello = obs::Json::object();
  hello.set("type", obs::Json::string("hello"));
  hello.set("schemas", std::move(schemas));
  ASSERT_EQ(write_frame(fd.get(), hello), FrameStatus::Ok);
  obs::Json frame;
  ASSERT_EQ(read_frame(fd.get(), &frame, 5000), FrameStatus::Ok);
  EXPECT_EQ(frame_type(frame), "error");
  EXPECT_EQ(frame.find("code")->as_string(), "version_mismatch");
  EXPECT_TRUE(eventually([&] { return f.server->counters().handshake_rejects == 1; }));
}

TEST(Server, GracefulDrainFinishesQueuedWorkAndUnbindsSocket) {
  ServerOptions opt;
  opt.socket_path = sock_path("drain");
  opt.workers = 1;
  opt.queue_limit = 8;
  opt.cache_dir = ::testing::TempDir() + "cachierd_drain_cache";
  std::filesystem::remove_all(opt.cache_dir);
  ::unlink(opt.socket_path.c_str());
  Server server(opt);
  server.start();

  // A job is in the queue when the drain begins; it must still complete.
  io::Fd pending = raw_submit(opt.socket_path, make_req(kFastProgram));
  (void)raw_wait_for(pending.get(), "status");
  server.request_drain();
  const obs::Json result = raw_wait_for(pending.get(), "result");
  EXPECT_EQ(result.find("exit")->as_u64(), 0u);

  // New connections are refused while draining (or the socket is gone).
  io::Fd late = raw_connect(opt.socket_path);
  if (late.valid()) {
    if (write_frame(late.get(), hello_frame()) == FrameStatus::Ok) {
      obs::Json frame;
      const FrameStatus st = read_frame(late.get(), &frame, 5000);
      if (st == FrameStatus::Ok && frame_type(frame) == "hello_ok") {
        (void)write_frame(late.get(), submit_frame(make_req(kFastProgram)));
        obs::Json reply;
        if (read_frame(late.get(), &reply, 5000) == FrameStatus::Ok) {
          EXPECT_EQ(frame_type(reply), "error");
          EXPECT_EQ(reply.find("code")->as_string(), "draining");
        }
      }
    }
  }

  server.join();
  // Socket file removed; cache index flushed.
  EXPECT_FALSE(std::filesystem::exists(opt.socket_path));
  EXPECT_TRUE(std::filesystem::exists(opt.cache_dir + "/index.json"));
  std::filesystem::remove_all(opt.cache_dir);
}

TEST(Server, SecondServerOnLivePathRefusesToStart) {
  ServerFixture f("dup");
  ServerOptions opt2 = f.opt;
  Server second(opt2);
  EXPECT_THROW(second.start(), std::runtime_error);
}

TEST(Server, ClientRetriesUntilDaemonAppears) {
  // The client's backoff covers the "daemon still starting" window: start
  // the server a beat after the client begins submitting.
  ServerOptions opt;
  opt.socket_path = sock_path("late");
  opt.workers = 1;
  opt.queue_limit = 4;
  ::unlink(opt.socket_path.c_str());
  Server server(opt);
  std::thread starter([&] {
    std::this_thread::sleep_for(300ms);
    server.start();
  });
  ClientOptions c;
  c.socket_path = opt.socket_path;
  c.max_attempts = 10;
  c.backoff_base_ms = 100;
  const JobResult r = submit_job(c, make_req(kFastProgram));
  EXPECT_EQ(r.exit, 0) << r.error;
  starter.join();
  server.request_drain();
  server.join();
}

}  // namespace
