// Daemon soak: many concurrent clients hammering one Server with a mix
// of commands, repeated (cacheable) requests, poisoned sources, injected
// simulator faults, short deadlines, and mid-stream disconnects.  The
// acceptance criteria from the issue: the daemon stays live throughout
// (no deadlocks, no worker-slot leaks), drains cleanly, and every
// cache-served result is byte-identical to the fresh run that populated
// it.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cico/daemon/client.hpp"
#include "cico/daemon/protocol.hpp"
#include "cico/daemon/server.hpp"

namespace {

using namespace cico;
using namespace cico::daemon;
using namespace std::chrono_literals;

const char* kGoodProgram =
    "const N = 64;\n"
    "shared real A[N];\n"
    "parallel\n"
    "  A[pid] = pid + 1;\n"
    "  barrier;\n"
    "end\n";

const char* kRacyProgram =
    "const N = 64;\n"
    "shared real A[N];\n"
    "shared real SUM[2];\n"
    "parallel\n"
    "  A[pid] = pid + 1;\n"
    "  barrier;\n"
    "  SUM[0] = SUM[0] + A[pid];\n"
    "  barrier;\n"
    "end\n";

const char* kSlowProgram =
    "const N = 64;\n"
    "shared real A[N];\n"
    "parallel\n"
    "  for r = 1 to 400 do\n"
    "    for i = 0 to N - 1 do\n"
    "      A[pid] = A[pid] + 1;\n"
    "    od\n"
    "    barrier;\n"
    "  od\n"
    "end\n";

const char* kBadProgram = "this is @@ not minipar $$\n";

struct Mix {
  const char* command;
  const char* source;
  const char* faults;
  int expected_exit;  ///< -1 = any non-cancelled outcome accepted
};

/// The job mix each client cycles through.  Repeats within and across
/// clients make cache hits common; the poisoned source exercises failure
/// isolation; the fault spec exercises the injected-fault path.
const Mix kMixes[] = {
    {"run", kGoodProgram, "", 0},
    {"lint", kRacyProgram, "", 0},
    {"annotate", kRacyProgram, "", 0},
    {"report", kRacyProgram, "", 0},
    {"run", kBadProgram, "", 2},
    {"run", kGoodProgram, "drop=0.05,dup=0.02,retries=0,seed=7", 0},
    {"plan", kGoodProgram, "", 0},
    {"trace", kGoodProgram, "", 0},
};

TEST(DaemonSoak, ConcurrentClientsFaultsDisconnectsAndDeadlines) {
  ServerOptions opt;
  opt.socket_path = ::testing::TempDir() + "cachierd_soak.sock";
  opt.workers = 4;
  opt.queue_limit = 16;
  opt.monitor_tick_ms = 10;
  ::unlink(opt.socket_path.c_str());
  Server server(opt);
  server.start();

  constexpr int kClients = 8;
  constexpr int kJobsPerClient = 10;

  // Byte-identity ledger: for every cache key, the first observed result
  // bytes; every later result under the same key must match exactly.
  std::mutex ledger_mu;
  std::map<std::string, std::string> ledger;
  std::atomic<int> failures{0};
  std::atomic<int> cache_hits{0};

  auto client_thread = [&](int id) {
    for (int j = 0; j < kJobsPerClient; ++j) {
      const Mix& mix = kMixes[(id + j) % (sizeof(kMixes) / sizeof(kMixes[0]))];
      JobRequest req;
      req.command = mix.command;
      req.name = "soak.mp";
      req.source = mix.source;
      req.cfg.nodes = 4;
      req.cfg.faults = mix.faults;
      ClientOptions c;
      c.socket_path = opt.socket_path;
      c.max_attempts = 20;  // ride out shed windows under full load
      try {
        const JobResult r = submit_job(c, req);
        if (r.cancelled) {
          ++failures;
          continue;
        }
        if (mix.expected_exit >= 0 && r.exit != mix.expected_exit) {
          ADD_FAILURE() << "client " << id << " job " << j << " ("
                        << mix.command << "): exit " << r.exit << " want "
                        << mix.expected_exit << ": " << r.error;
          ++failures;
        }
        if (r.cached) ++cache_hits;
        const std::string bytes =
            r.out + "\x1f" + r.report + "\x1f" + std::to_string(r.exit);
        std::lock_guard<std::mutex> lk(ledger_mu);
        auto [it, inserted] = ledger.emplace(r.key, bytes);
        if (!inserted && it->second != bytes) {
          ADD_FAILURE() << "cache key " << r.key
                        << " served two different byte streams";
          ++failures;
        }
      } catch (const std::exception& e) {
        ADD_FAILURE() << "client " << id << " job " << j << ": " << e.what();
        ++failures;
      }
    }
  };

  // Fault injectors running alongside the well-behaved clients: abrupt
  // disconnects at each protocol stage, garbage frames, and a deadline
  // that always expires.  None may wedge the daemon.
  auto chaos_thread = [&] {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, opt.socket_path.c_str(),
                opt.socket_path.size() + 1);
    for (int j = 0; j < 12; ++j) {
      io::Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
      if (!fd.valid() ||
          ::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                    sizeof(addr)) != 0) {
        continue;
      }
      switch (j % 4) {
        case 0:
          break;  // connect and vanish before the hello
        case 1:   // vanish after the hello
          (void)write_frame(fd.get(), hello_frame());
          break;
        case 2: {  // submit a slow job, then vanish mid-stream
          (void)write_frame(fd.get(), hello_frame());
          obs::Json frame;
          if (read_frame(fd.get(), &frame, 5000) == FrameStatus::Ok) {
            JobRequest req;
            req.command = "run";
            req.name = "chaos.mp";
            req.source = kSlowProgram;
            req.cfg.nodes = 4;
            (void)write_frame(fd.get(), submit_frame(req));
          }
          break;
        }
        case 3: {  // raw garbage instead of a frame
          const char junk[] = "NOT A FRAME";
          (void)io::write_full(fd.get(), junk, sizeof junk);
          break;
        }
      }
      std::this_thread::sleep_for(25ms);
    }
  };

  auto deadline_thread = [&] {
    for (int j = 0; j < 3; ++j) {
      JobRequest req;
      req.command = "run";
      req.name = "deadline.mp";
      req.source = kSlowProgram;
      req.cfg.nodes = 8;  // distinct key: never collides with chaos jobs
      req.cfg.deadline_ms = 80;
      ClientOptions c;
      c.socket_path = opt.socket_path;
      c.max_attempts = 20;
      try {
        const JobResult r = submit_job(c, req);
        EXPECT_TRUE(r.cancelled) << "an 80ms deadline on a ~1.5s job";
      } catch (const std::runtime_error& e) {
        // "deadline exceeded" surfaces as an error frame; that's the
        // expected shape when the server reports it that way.
        EXPECT_NE(std::string(e.what()).find("deadline"), std::string::npos)
            << e.what();
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(kClients + 2);
  for (int i = 0; i < kClients; ++i) threads.emplace_back(client_thread, i);
  threads.emplace_back(chaos_thread);
  threads.emplace_back(deadline_thread);
  for (std::thread& t : threads) t.join();

  // The daemon survived the storm: it still serves a fresh job...
  ClientOptions c;
  c.socket_path = opt.socket_path;
  JobRequest req;
  req.command = "run";
  req.name = "after.mp";
  req.source = kGoodProgram;
  req.cfg.nodes = 2;
  const JobResult after = submit_job(c, req);
  EXPECT_EQ(after.exit, 0) << after.error;

  // ...no worker slot leaked (in-flight drains to zero)...
  const auto give_up = std::chrono::steady_clock::now() + 30s;
  while (server.jobs_in_flight() != 0 &&
         std::chrono::steady_clock::now() < give_up) {
    std::this_thread::sleep_for(20ms);
  }
  EXPECT_EQ(server.jobs_in_flight(), 0u);

  // ...the repeated mix produced real cache traffic with zero divergence
  // (every ADD_FAILURE above would have flagged one)...
  EXPECT_GT(cache_hits.load(), 0);
  EXPECT_EQ(failures.load(), 0);

  // ...and the drain completes promptly instead of deadlocking.
  server.request_drain();
  server.join();
  const Server::Counters counters = server.counters();
  EXPECT_GE(counters.completed,
            static_cast<std::uint64_t>(kClients * kJobsPerClient));
  EXPECT_GT(counters.cache_hits, 0u);
}

}  // namespace
