// Unit tests for cachierd's building blocks, no server involved: frame
// (de)framing over a socketpair, the content hasher's field delimitation,
// cache-key semantics (what is and is NOT part of the key), the version
// identity document and handshake checks, job JSON round-trips, the
// in-process job runner's exit contract, and the two-tier result cache.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "cico/common/hash.hpp"
#include "cico/common/io.hpp"
#include "cico/daemon/client.hpp"
#include "cico/daemon/job.hpp"
#include "cico/daemon/protocol.hpp"
#include "cico/daemon/result_cache.hpp"

namespace {

using namespace cico;
using namespace cico::daemon;

/// Pair of connected stream sockets with RAII.
struct SockPair {
  io::Fd a, b;
  SockPair() {
    int fds[2];
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    a.reset(fds[0]);
    b.reset(fds[1]);
  }
};

const char* kProgram =
    "const N = 64;\n"
    "shared real A[N];\n"
    "parallel\n"
    "  A[pid] = pid + 1;\n"
    "  barrier;\n"
    "end\n";

JobRequest make_req(const std::string& cmd) {
  JobRequest req;
  req.command = cmd;
  req.name = "unit.mp";
  req.source = kProgram;
  req.cfg.nodes = 4;
  return req;
}

// --- framing ---------------------------------------------------------------

TEST(Framing, RoundTripsAFrame) {
  SockPair sp;
  const obs::Json sent = status_frame("running");
  ASSERT_EQ(write_frame(sp.a.get(), sent), FrameStatus::Ok);
  obs::Json got;
  ASSERT_EQ(read_frame(sp.b.get(), &got), FrameStatus::Ok);
  EXPECT_EQ(got.dump_string(), sent.dump_string());
  EXPECT_EQ(frame_type(got), "status");
}

TEST(Framing, PeerCloseReadsAsClosed) {
  SockPair sp;
  sp.a.reset();
  obs::Json got;
  EXPECT_EQ(read_frame(sp.b.get(), &got), FrameStatus::Closed);
}

TEST(Framing, OversizedLengthIsProtocolError) {
  SockPair sp;
  // 0xFFFFFFFF length prefix: far above kMaxFrameBytes.
  const unsigned char hdr[4] = {0xFF, 0xFF, 0xFF, 0xFF};
  ASSERT_EQ(io::write_full(sp.a.get(), hdr, 4), io::IoStatus::Ok);
  obs::Json got;
  EXPECT_THROW(read_frame(sp.b.get(), &got), ProtocolError);
}

TEST(Framing, GarbagePayloadIsProtocolError) {
  SockPair sp;
  const unsigned char hdr[4] = {3, 0, 0, 0};
  ASSERT_EQ(io::write_full(sp.a.get(), hdr, 4), io::IoStatus::Ok);
  ASSERT_EQ(io::write_full(sp.a.get(), "{{{", 3), io::IoStatus::Ok);
  obs::Json got;
  EXPECT_THROW(read_frame(sp.b.get(), &got), ProtocolError);
}

TEST(Framing, TimeoutWhenPeerStallsMidFrame) {
  SockPair sp;
  // Header promises 8 bytes; only the header arrives.  The whole-frame
  // timeout must fire instead of blocking the reader forever.
  const unsigned char hdr[4] = {8, 0, 0, 0};
  ASSERT_EQ(io::write_full(sp.a.get(), hdr, 4), io::IoStatus::Ok);
  obs::Json got;
  EXPECT_EQ(read_frame(sp.b.get(), &got, /*timeout_ms=*/50),
            FrameStatus::Timeout);
}

// --- EINTR-safe I/O helpers ------------------------------------------------

TEST(Io, FullReadAcrossPartialWrites) {
  SockPair sp;
  const std::string msg(100000, 'x');  // exceeds one socket buffer chunk
  std::thread writer([&] {
    EXPECT_EQ(io::write_full(sp.a.get(), msg.data(), msg.size()),
              io::IoStatus::Ok);
    sp.a.reset();
  });
  std::string got(msg.size(), '\0');
  EXPECT_EQ(io::read_full(sp.b.get(), got.data(), got.size()),
            io::IoStatus::Ok);
  EXPECT_EQ(got, msg);
  writer.join();
}

TEST(Io, WriteToClosedPeerIsClosedNotCrash) {
  SockPair sp;
  sp.b.reset();
  const std::string msg(1 << 20, 'y');
  EXPECT_EQ(io::write_full(sp.a.get(), msg.data(), msg.size()),
            io::IoStatus::Closed);
}

// --- content hasher --------------------------------------------------------

TEST(Hash, FieldsAreDelimited) {
  // ("a","b") and ("ab","") must hash differently: fields are
  // length-delimited, not concatenated.
  common::ContentHasher h1, h2;
  h1 << "a" << "b";
  h2 << "ab" << "";
  EXPECT_NE(h1.hex(), h2.hex());
}

TEST(Hash, DeterministicAnd32Hex) {
  common::ContentHasher h1, h2;
  h1 << "hello" << "world";
  h2 << "hello" << "world";
  EXPECT_EQ(h1.hex(), h2.hex());
  EXPECT_EQ(h1.hex().size(), 32u);
  for (char c : h1.hex()) EXPECT_TRUE(std::isxdigit(c) != 0) << c;
}

// --- cache key -------------------------------------------------------------

TEST(CacheKey, SensitiveToOutputChangingInputs) {
  const JobRequest base = make_req("run");
  JobRequest other = base;
  other.command = "lint";
  EXPECT_NE(cache_key(base), cache_key(other));
  other = base;
  other.source += " ";
  EXPECT_NE(cache_key(base), cache_key(other));
  other = base;
  other.cfg.nodes = 8;
  EXPECT_NE(cache_key(base), cache_key(other));
  other = base;
  other.cfg.faults = "drop=0.01,seed=1";
  EXPECT_NE(cache_key(base), cache_key(other));
}

TEST(CacheKey, InsensitiveToHostOnlyKnobs) {
  // deadline_ms bounds host time; boundary_threads is byte-identical by
  // the boundary_equiv_test guarantee.  Neither may fragment the cache.
  const JobRequest base = make_req("run");
  JobRequest other = base;
  other.cfg.deadline_ms = 1234;
  other.cfg.boundary_threads = 4;
  EXPECT_EQ(cache_key(base), cache_key(other));
}

// --- version handshake -----------------------------------------------------

TEST(Version, DocumentNamesEverySchema) {
  const obs::Json v = version_json();
  EXPECT_NE(v.find("version"), nullptr);
  const obs::Json* schemas = v.find("schemas");
  ASSERT_NE(schemas, nullptr);
  EXPECT_NE(schemas->find("report"), nullptr);
  EXPECT_NE(schemas->find("lint"), nullptr);
  ASSERT_NE(schemas->find("daemon_protocol"), nullptr);
  EXPECT_EQ(schemas->find("daemon_protocol")->as_u64(),
            kDaemonProtocolVersion);
}

TEST(Version, OwnHelloIsCompatible) {
  EXPECT_EQ(hello_mismatch(hello_frame()), "");
  EXPECT_EQ(hello_mismatch(hello_ok_frame()), "");
}

TEST(Version, ForeignProtocolIsRejected) {
  obs::Json schemas = obs::Json::object();
  schemas.set("daemon_protocol",
              obs::Json::number(kDaemonProtocolVersion + 1));
  obs::Json hello = obs::Json::object();
  hello.set("type", obs::Json::string("hello"));
  hello.set("schemas", std::move(schemas));
  const std::string m = hello_mismatch(hello);
  EXPECT_NE(m.find("daemon protocol"), std::string::npos) << m;
}

TEST(Version, MissingSchemasIsRejected) {
  obs::Json hello = obs::Json::object();
  hello.set("type", obs::Json::string("hello"));
  EXPECT_NE(hello_mismatch(hello), "");
}

// --- job JSON round trips --------------------------------------------------

TEST(JobJson, SubmitRoundTrips) {
  JobRequest req = make_req("run");
  req.plan_text = "plan bytes";
  req.trace_text = "trace bytes";
  req.cfg.mode = cachier::Mode::Programmer;
  req.cfg.faults = "drop=0.5,seed=9";
  req.cfg.paranoid = true;
  req.cfg.want_report = true;
  req.cfg.deadline_ms = 777;
  const JobRequest got = parse_submit(submit_frame(req));
  EXPECT_EQ(got.command, req.command);
  EXPECT_EQ(got.name, req.name);
  EXPECT_EQ(got.source, req.source);
  EXPECT_EQ(got.trace_text, req.trace_text);
  EXPECT_EQ(got.plan_text, req.plan_text);
  EXPECT_EQ(got.cfg.nodes, req.cfg.nodes);
  EXPECT_EQ(got.cfg.mode, req.cfg.mode);
  EXPECT_EQ(got.cfg.faults, req.cfg.faults);
  EXPECT_EQ(got.cfg.paranoid, req.cfg.paranoid);
  EXPECT_EQ(got.cfg.want_report, req.cfg.want_report);
  EXPECT_EQ(got.cfg.deadline_ms, req.cfg.deadline_ms);
}

TEST(JobJson, SubmitRejectsUnknownCommandAndBadNodes) {
  JobRequest req = make_req("frobnicate");
  EXPECT_THROW((void)parse_submit(submit_frame(req)), std::runtime_error);
  req = make_req("run");
  req.cfg.nodes = 100000;  // above the protocol's sanity bound
  EXPECT_THROW((void)parse_submit(submit_frame(req)), std::runtime_error);
}

TEST(JobJson, ResultRoundTrips) {
  JobResult res;
  res.exit = 1;
  res.cached = true;
  res.key = "abc123";
  res.out = "stdout bytes\nwith\nnewlines";
  res.report = "{\"x\": 1}";
  res.error = "";
  res.diags = {"# line one\n", "# line two\n"};
  const JobResult got = parse_result(result_frame(res));
  EXPECT_EQ(got.exit, res.exit);
  EXPECT_EQ(got.cached, res.cached);
  EXPECT_EQ(got.key, res.key);
  EXPECT_EQ(got.out, res.out);
  EXPECT_EQ(got.report, res.report);
  EXPECT_EQ(got.diags, res.diags);
}

// --- in-process job runner -------------------------------------------------

TEST(RunJob, RunMatchesExitContract) {
  const JobResult r = run_job(make_req("run"));
  EXPECT_EQ(r.exit, 0) << r.error;
  EXPECT_NE(r.out.find("execution time:"), std::string::npos) << r.out;
}

TEST(RunJob, ParseErrorIsExitTwoNotThrow) {
  JobRequest req = make_req("run");
  req.source = "this is @@ not minipar $$\n";
  const JobResult r = run_job(req);
  EXPECT_EQ(r.exit, 2);
  EXPECT_FALSE(r.error.empty());
  EXPECT_FALSE(r.cancelled);
}

TEST(RunJob, PreCancelledComesBackCancelled) {
  std::atomic<bool> cancel{true};
  const JobResult r = run_job(make_req("run"), &cancel);
  EXPECT_TRUE(r.cancelled);
  EXPECT_EQ(r.exit, 2);
}

TEST(RunJob, AnnotateEmitsSummaryDiag) {
  const JobResult r = run_job(make_req("annotate"));
  EXPECT_EQ(r.exit, 0) << r.error;
  ASSERT_FALSE(r.diags.empty());
  EXPECT_NE(r.diags[0].find("# cachier:"), std::string::npos) << r.diags[0];
}

// --- result cache ----------------------------------------------------------

TEST(ResultCache, MemoryHitIsByteIdentical) {
  ResultCache cache;
  JobResult r;
  r.exit = 0;
  r.out = "bytes";
  r.diags = {"d1\n"};
  cache.insert("k1", r);
  const auto hit = cache.lookup("k1");
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(hit->cached);
  EXPECT_EQ(hit->key, "k1");
  EXPECT_EQ(hit->out, r.out);
  EXPECT_EQ(hit->diags, r.diags);
  EXPECT_FALSE(cache.lookup("k2").has_value());
  EXPECT_EQ(cache.counters().hits, 1u);
  EXPECT_EQ(cache.counters().misses, 1u);
}

TEST(ResultCache, RefusesCancelledResults) {
  ResultCache cache;
  JobResult r;
  r.cancelled = true;
  cache.insert("k1", r);
  EXPECT_FALSE(cache.lookup("k1").has_value());
}

TEST(ResultCache, EvictsLeastRecentlyUsed) {
  ResultCache cache("", /*max_entries=*/2);
  JobResult r;
  cache.insert("k1", r);
  cache.insert("k2", r);
  (void)cache.lookup("k1");  // k1 is now MRU; k2 is the victim
  cache.insert("k3", r);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_TRUE(cache.lookup("k1").has_value());
  EXPECT_FALSE(cache.lookup("k2").has_value());
  EXPECT_EQ(cache.counters().evictions, 1u);
}

TEST(ResultCache, DiskTierSurvivesMemoryEvictionAndRestart) {
  const std::string dir = ::testing::TempDir() + "cachier_cache_ut";
  std::filesystem::remove_all(dir);
  const std::string key(32, 'a');
  {
    ResultCache cache(dir, /*max_entries=*/1);
    JobResult r;
    r.out = "persisted";
    cache.insert(key, r);
    cache.insert(std::string(32, 'b'), r);  // evicts `key` from memory
    const auto hit = cache.lookup(key);     // reloaded from disk
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->out, "persisted");
    EXPECT_GE(cache.counters().disk_loads, 1u);
    cache.flush_index();
  }
  {
    ResultCache fresh(dir);  // a restarted daemon sees the file tier
    const auto hit = fresh.lookup(key);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->out, "persisted");
  }
  // flush_index wrote a parseable index naming both keys.
  std::ifstream in(dir + "/index.json");
  ASSERT_TRUE(in.is_open());
  std::ostringstream ss;
  ss << in.rdbuf();
  const obs::Json idx = obs::Json::parse(ss.str());
  ASSERT_NE(idx.find("entries"), nullptr);
  EXPECT_EQ(idx.find("entry_count")->as_u64(), 2u);
  std::filesystem::remove_all(dir);
}

TEST(ResultCache, LargePayloadsDedupeThroughArtifactStore) {
  // Payloads >= kInlineMax live in the content-addressed store tier, so
  // two keys whose jobs produced the same bytes share one object -- and
  // both still read back exactly.
  const std::string dir = ::testing::TempDir() + "cachier_cache_store";
  std::filesystem::remove_all(dir);
  {
    ResultCache cache(dir, /*max_entries=*/1);
    JobResult r;
    r.out = std::string(4096, 'x') + "payload";
    r.report = "{\"big\": \"" + std::string(512, 'r') + "\"}";
    cache.insert(std::string(32, 'a'), r);
    cache.insert(std::string(32, 'b'), r);  // same bytes, second key
    ASSERT_NE(cache.artifact_store(), nullptr);
    // One object per distinct payload, not per key.
    const auto hit = cache.lookup(std::string(32, 'a'));  // disk reload
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->out, r.out);
    EXPECT_EQ(hit->report, r.report);
  }
  {
    ResultCache fresh(dir);  // restart: refs resolve from the store tier
    const auto hit = fresh.lookup(std::string(32, 'b'));
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->out.substr(4096), "payload");
  }
  // The entry file itself carries a hash reference, not the bytes.
  std::ifstream in(dir + "/" + std::string(32, 'a') + ".json");
  std::ostringstream ss;
  ss << in.rdbuf();
  EXPECT_NE(ss.str().find("stdout_ref"), std::string::npos);
  EXPECT_EQ(ss.str().find("payload"), std::string::npos);
  std::filesystem::remove_all(dir);
}

TEST(ResultCache, MissingStoreObjectIsAMiss) {
  const std::string dir = ::testing::TempDir() + "cachier_cache_gone";
  std::filesystem::remove_all(dir);
  const std::string key(32, 'd');
  {
    ResultCache cache(dir, /*max_entries=*/1);
    JobResult r;
    r.out = std::string(4096, 'y');
    cache.insert(key, r);
  }
  std::filesystem::remove_all(dir + "/store/objects");
  ResultCache fresh(dir);
  EXPECT_FALSE(fresh.lookup(key).has_value());
  std::filesystem::remove_all(dir);
}

TEST(ResultCache, CorruptDiskFileIsAMiss) {
  const std::string dir = ::testing::TempDir() + "cachier_cache_corrupt";
  std::filesystem::remove_all(dir);
  ResultCache cache(dir);
  const std::string key(32, 'c');
  {
    std::ofstream out(dir + "/" + key + ".json");
    out << "{ half a json";
  }
  EXPECT_FALSE(cache.lookup(key).has_value());
  std::filesystem::remove_all(dir);
}

TEST(Backoff, ExponentialWithCap) {
  ClientOptions opt;
  opt.backoff_base_ms = 50;
  opt.backoff_cap_ms = 2000;
  EXPECT_EQ(backoff_delay_ms(opt, 0), 50u);
  EXPECT_EQ(backoff_delay_ms(opt, 1), 100u);
  EXPECT_EQ(backoff_delay_ms(opt, 2), 200u);
  EXPECT_EQ(backoff_delay_ms(opt, 10), 2000u);  // capped
  EXPECT_EQ(backoff_delay_ms(opt, 100), 2000u);  // shift-overflow guarded
}

}  // namespace
