#include "cico/srcann/annotator.hpp"

#include <gtest/gtest.h>

#include "cico/lang/parser.hpp"
#include "cico/lang/unparse.hpp"

namespace cico::srcann {
namespace {

namespace lang = cico::lang;

struct Pipeline {
  lang::Program prog;
  trace::Trace trace;
  std::unique_ptr<sim::Machine> machine;
  std::unique_ptr<lang::LoadedProgram> lp;
};

Pipeline trace_program(const std::string& src, std::uint32_t nodes) {
  Pipeline pl;
  pl.prog = lang::parse(src);
  sim::SimConfig cfg;
  cfg.nodes = nodes;
  cfg.trace_mode = true;
  pl.machine = std::make_unique<sim::Machine>(cfg);
  trace::TraceWriter w;
  pl.machine->set_trace_writer(&w);
  pl.lp = std::make_unique<lang::LoadedProgram>(pl.prog, *pl.machine);
  w.set_labels(pl.machine->heap().trace_labels());
  pl.machine->run([&](sim::Proc& p) { pl.lp->run_node(p); });
  pl.trace = w.take();
  return pl;
}

// The owner-partitioned fill: each node writes its own slice; slice
// boundaries are block-aligned (8 elements = 2 blocks each).
constexpr const char* kPartitioned = R"(
const N = 32;
shared real A[N];
parallel
  private per = N / nprocs;
  private lo = pid * per;
  for i = lo to lo + per - 1 do
    A[i] = pid;
  od
  barrier;
  private s = 0;
  for i = 0 to N - 1 do
    s = s + A[i];
  od
end
)";

TEST(AnnotatorTest, EmitsAffinePidAnnotations) {
  Pipeline pl = trace_program(kPartitioned, 4);
  AnnotateResult res = annotate(pl.prog, pl.trace, *pl.lp,
                                pl.machine->config().cache,
                                {.mode = cachier::Mode::Performance});
  EXPECT_GT(res.inserted, 0u);
  const std::string text = lang::unparse(res.program);
  // Every node writes A[8*pid .. 8*pid+7] in epoch 0 and everyone reads it
  // in epoch 1 -> a check_in parameterized by pid before the barrier.
  EXPECT_NE(text.find("check_in A[8 * pid:7 + 8 * pid]"), std::string::npos)
      << text;
  // The annotated program still parses.
  EXPECT_NO_THROW(lang::parse(text));
}

TEST(AnnotatorTest, ProgrammerModeAddsCheckouts) {
  Pipeline pl = trace_program(kPartitioned, 4);
  AnnotateResult res = annotate(pl.prog, pl.trace, *pl.lp,
                                pl.machine->config().cache,
                                {.mode = cachier::Mode::Programmer});
  const std::string text = lang::unparse(res.program);
  EXPECT_NE(text.find("check_out_X A["), std::string::npos) << text;
  EXPECT_NE(text.find("check_out_S A["), std::string::npos) << text;
  EXPECT_NO_THROW(lang::parse(text));
}

TEST(AnnotatorTest, TightAnnotationsAroundRacyUpdate) {
  // Two nodes race on A[0] (read-modify-write in the same epoch): the
  // section 4.4 treatment wraps the update with check_out_X / check_in.
  constexpr const char* kRacy = R"(
shared real A[1];
parallel
  A[0] = A[0] + 1;
end
)";
  Pipeline pl = trace_program(kRacy, 2);
  AnnotateResult res = annotate(pl.prog, pl.trace, *pl.lp,
                                pl.machine->config().cache,
                                {.mode = cachier::Mode::Performance});
  EXPECT_EQ(res.races, 1u);
  const std::string text = lang::unparse(res.program);
  const auto cox = text.find("check_out_X A[0]");
  const auto upd = text.find("A[0] = A[0] + 1;");
  const auto ci = text.find("check_in A[0]");
  ASSERT_NE(cox, std::string::npos) << text;
  ASSERT_NE(upd, std::string::npos);
  ASSERT_NE(ci, std::string::npos);
  EXPECT_LT(cox, upd);
  EXPECT_LT(upd, ci);
}

TEST(AnnotatorTest, TwoDRowBandsGenerateLoops) {
  // Node 0 initializes a whole 2-D array; everyone reads it next epoch:
  // the check-in of a multi-row band must become a GENERATED loop
  // (section 4.3 "generating new loops for them").
  constexpr const char* kTwoD = R"(
const N = 8;
shared real G[N, N];
parallel
  if pid == 0 then
    for i = 0 to N - 1 do
      for j = 0 to N - 1 do
        G[i, j] = i * N + j;
      od
    od
  fi
  barrier;
  private s = 0;
  for i = 0 to N - 1 do
    s = s + G[i, pid];
  od
end
)";
  Pipeline pl = trace_program(kTwoD, 2);
  AnnotateResult res = annotate(pl.prog, pl.trace, *pl.lp,
                                pl.machine->config().cache,
                                {.mode = cachier::Mode::Performance});
  EXPECT_GT(res.generated_loops, 0u);
  const std::string text = lang::unparse(res.program);
  EXPECT_NE(text.find("for _cico_r"), std::string::npos) << text;
  EXPECT_NO_THROW(lang::parse(text));
}

TEST(AnnotatorTest, NaiveAnnotationWrapsEveryWrite) {
  // The section 4.3 strawman listing: per-iteration annotations.
  constexpr const char* kLoop = R"(
const N = 16;
shared real A[N];
parallel
  for i = 0 to N - 1 step 2 do
    A[i] = i;
  od
end
)";
  lang::Program p = lang::parse(kLoop);
  lang::Program naive = annotate_naive(p);
  const std::string text = lang::unparse(naive);
  EXPECT_NE(text.find("check_out_X A[i]"), std::string::npos) << text;
  EXPECT_NE(text.find("check_in A[i]"), std::string::npos);
  // Still a valid program with unchanged semantics.
  EXPECT_NO_THROW(lang::parse(text));
}

TEST(AnnotatorTest, AnnotationsDoNotChangeSemantics) {
  // The CICO guarantee (section 4.5): annotations never affect results.
  auto run_values = [&](const lang::Program& prog) {
    sim::SimConfig cfg;
    cfg.nodes = 4;
    sim::Machine m(cfg);
    lang::LoadedProgram lp(prog, m);
    m.run([&](sim::Proc& p) { lp.run_node(p); });
    std::vector<double> vals;
    for (std::size_t i = 0; i < 32; ++i) vals.push_back(lp.value("A", i));
    return std::pair{vals, m.exec_time()};
  };

  Pipeline pl = trace_program(kPartitioned, 4);
  AnnotateResult res = annotate(pl.prog, pl.trace, *pl.lp,
                                pl.machine->config().cache,
                                {.mode = cachier::Mode::Performance});
  // Re-parse the unparsed text: the full source-to-source pipeline.
  lang::Program annotated = lang::parse(lang::unparse(res.program));

  auto [v_plain, t_plain] = run_values(pl.prog);
  auto [v_anno, t_anno] = run_values(annotated);
  EXPECT_EQ(v_plain, v_anno);
  // The producer-consumer check-in also makes it faster here.
  EXPECT_LT(t_anno, t_plain);
}

}  // namespace
}  // namespace cico::srcann
