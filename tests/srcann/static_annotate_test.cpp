// Trace-free annotation (`cachier annotate --static`) end to end:
// annotate_static must be lint-clean in both modes, preserve program
// semantics through an unparse/reparse round trip, and beat the
// unannotated baseline in performance mode.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cico/lang/interp.hpp"
#include "cico/lang/parser.hpp"
#include "cico/lang/unparse.hpp"
#include "cico/srcann/annotator.hpp"

namespace cico::srcann {
namespace {

namespace lang = cico::lang;

constexpr const char* kJacobi = R"(
const N = 16;
const P = 2;
const T = 4;
shared real U[N, N];
shared real V[N, N];
parallel
  if pid == 0 then
    for i = 0 to N - 1 do
      for j = 0 to N - 1 do
        U[i, j] = (i * 31 + j * 17) % 10;
        V[i, j] = U[i, j];
      od
    od
  fi
  barrier;
  private bs = N / P;
  private pi = (pid - pid % P) / P;
  private pj = pid % P;
  private li = max(pi * bs, 1);
  private ui = min(pi * bs + bs - 1, N - 2);
  private lj = max(pj * bs, 1);
  private uj = min(pj * bs + bs - 1, N - 2);
  for t = 1 to T do
    for i = li to ui do
      for j = lj to uj do
        V[i, j] = 0.25 * (U[i - 1, j] + U[i + 1, j] + U[i, j - 1] + U[i, j + 1]);
      od
    od
    barrier;
    for i = li to ui do
      for j = lj to uj do
        U[i, j] = V[i, j];
      od
    od
    barrier;
  od
end
)";

// One producer, all-node consumers: the simplest program with a
// static SharedRead epoch (exercises check_out_S / prefetch planning).
constexpr const char* kBroadcast = R"(
const N = 16;
shared real A[N];
shared real S[4];
parallel
  if pid == 0 then
    for i = 0 to N - 1 do
      A[i] = i * 2;
    od
  fi
  barrier;
  private s = 0;
  for i = 0 to N - 1 do
    s = s + A[i];
  od
  S[pid] = s;
  barrier;
end
)";

struct RunOut {
  std::vector<double> u;
  Cycle time = 0;
  Cycle traps = 0;
};

RunOut run(const lang::Program& prog, std::uint32_t nodes,
           const std::string& array) {
  sim::SimConfig cfg;
  cfg.nodes = nodes;
  sim::Machine m(cfg);
  lang::LoadedProgram lp(prog, m);
  m.run([&](sim::Proc& p) { lp.run_node(p); });
  RunOut out;
  const auto [d0, d1] = lp.array_dims(array);
  for (std::size_t i = 0; i < d0; ++i) {
    for (std::size_t j = 0; j < d1; ++j) {
      out.u.push_back(lp.value(array, i, j));
    }
  }
  out.time = m.exec_time();
  out.traps = m.stats().total(Stat::Traps);
  return out;
}

TEST(StaticAnnotateTest, JacobiIsLintCleanInBothModes) {
  const lang::Program p = lang::parse(kJacobi);
  for (const cachier::Mode mode :
       {cachier::Mode::Performance, cachier::Mode::Programmer}) {
    StaticAnnotateOptions opt;
    opt.mode = mode;
    const AnnotateResult r = annotate_static(p, 4, opt);
    EXPECT_GT(r.inserted, 0u);
    EXPECT_EQ(r.dropped, 0u) << r.notes;
    EXPECT_TRUE(r.lint.diagnostics.empty())
        << r.lint.diagnostics[0].message;
  }
}

TEST(StaticAnnotateTest, JacobiSemanticsPreservedAndFaster) {
  const lang::Program p = lang::parse(kJacobi);
  const RunOut base = run(p, 4, "U");
  const AnnotateResult r = annotate_static(p, 4, {});
  // Through the same unparse -> reparse pipeline the CLI uses.
  const lang::Program round = lang::parse(lang::unparse(r.program));
  const RunOut ann = run(round, 4, "U");
  ASSERT_EQ(ann.u.size(), base.u.size());
  for (std::size_t i = 0; i < base.u.size(); ++i) {
    EXPECT_DOUBLE_EQ(ann.u[i], base.u[i]) << "U element " << i;
  }
  EXPECT_LE(ann.traps, base.traps);
  EXPECT_LT(ann.time, base.time);
}

TEST(StaticAnnotateTest, RoundTrippedOutputStaysLintClean) {
  const AnnotateResult r = annotate_static(lang::parse(kJacobi), 4, {});
  const lang::Program round = lang::parse(lang::unparse(r.program));
  const AnnotateResult again = annotate_static(lang::parse(kJacobi), 4, {});
  // Deterministic emission: two runs produce identical source.
  EXPECT_EQ(lang::unparse(r.program), lang::unparse(again.program));
  const analysis::LintResult relint = analysis::lint(round);
  EXPECT_TRUE(relint.diagnostics.empty())
      << relint.diagnostics[0].message;
}

TEST(StaticAnnotateTest, BroadcastPlansSharedReadsAndPrefetch) {
  const lang::Program p = lang::parse(kBroadcast);
  StaticAnnotateOptions opt;
  opt.prefetch = true;
  const AnnotateResult r = annotate_static(p, 4, opt);
  EXPECT_TRUE(r.lint.diagnostics.empty())
      << r.lint.diagnostics[0].message;
  const std::string out = lang::unparse(r.program);
  EXPECT_NE(out.find("prefetch_S"), std::string::npos) << out;

  const RunOut base = run(p, 4, "S");
  const RunOut ann = run(lang::parse(out), 4, "S");
  ASSERT_EQ(ann.u.size(), base.u.size());
  for (std::size_t i = 0; i < base.u.size(); ++i) {
    EXPECT_DOUBLE_EQ(ann.u[i], base.u[i]) << "S element " << i;
  }
}

TEST(StaticAnnotateTest, NodesOutsideMaskWidthAreRejected) {
  const lang::Program p = lang::parse(kBroadcast);
  EXPECT_THROW((void)annotate_static(p, 0), std::exception);
  EXPECT_THROW((void)annotate_static(p, 65), std::exception);
}

}  // namespace
}  // namespace cico::srcann
