// cico::store: the epoch-chunked v2 trace format, the content-addressed
// object store, and delta sync.  The load-bearing properties:
//
//   * v2 is a bijective function of the canonical trace (round trips,
//     deterministic bytes, record order independent);
//   * every malformed v2 stream -- truncation at any byte, a flipped
//     payload bit, reordered chunks, trailing junk -- fails with a
//     `trace:` error;
//   * two runs differing in one epoch share every other chunk (the
//     dedupe the store exists for), and sync moves only the delta.
#include "cico/store/store.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cico/store/format.hpp"
#include "cico/store/sync.hpp"
#include "cico/trace/trace.hpp"

namespace cico::store {
namespace {

namespace fs = std::filesystem;

/// A small multi-epoch trace with labels, both record kinds, and an
/// empty epoch (2) to exercise chunk skipping.
trace::Trace sample_trace() {
  trace::Trace t;
  t.labels.push_back({"A", 0x1000, 256, true});
  t.labels.push_back({"my array", 0x2000, 512, false});
  for (EpochId e : {0u, 1u, 3u, 4u}) {
    for (NodeId n = 0; n < 4; ++n) {
      t.misses.push_back({e, n, trace::MissKind::ReadMiss,
                          0x1000 + 8ull * n + 64ull * e, 8, 10 + n});
      t.misses.push_back({e, n, trace::MissKind::WriteMiss,
                          0x2000 + 8ull * n + 64ull * e, 4, 20 + n});
      t.barriers.push_back({e, n, 7, 100ull * (e + 1)});
    }
  }
  trace::canonicalize(t);
  return t;
}

std::string v2_bytes(const trace::Trace& t, EpochId k = 1) {
  std::ostringstream os;
  save_v2(t, os, k);
  return os.str();
}

trace::Trace load_v2_bytes(const std::string& bytes) {
  std::istringstream is(bytes);
  return load_v2(is);
}

void expect_trace_error(const std::string& bytes, const std::string& needle) {
  try {
    (void)load_v2_bytes(bytes);
    FAIL() << "expected rejection (" << needle << ")";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_EQ(msg.rfind("trace:", 0), 0u) << msg;
    EXPECT_NE(msg.find(needle), std::string::npos) << msg;
  }
}

/// RAII temp directory for store tests.
struct TempDir {
  std::string path;
  TempDir() {
    char tmpl[] = "/tmp/cachier_store_test_XXXXXX";
    if (::mkdtemp(tmpl) != nullptr) path = tmpl;
  }
  ~TempDir() {
    if (!path.empty()) {
      std::error_code ec;
      fs::remove_all(path, ec);
    }
  }
  [[nodiscard]] std::string sub(const std::string& name) const {
    return path + "/" + name;
  }
};

// --- v2 format --------------------------------------------------------------

TEST(FormatV2Test, RoundTripsCanonicalTrace) {
  const trace::Trace t = sample_trace();
  for (EpochId k : {1u, 2u, 4u, 100u}) {
    const trace::Trace back = load_v2_bytes(v2_bytes(t, k));
    EXPECT_EQ(back.misses, t.misses) << "k=" << k;
    EXPECT_EQ(back.barriers, t.barriers) << "k=" << k;
    EXPECT_EQ(back.labels, t.labels) << "k=" << k;
  }
}

TEST(FormatV2Test, RoundTripsEmptyTrace) {
  const trace::Trace back = load_v2_bytes(v2_bytes(trace::Trace{}));
  EXPECT_TRUE(back.misses.empty());
  EXPECT_TRUE(back.barriers.empty());
}

TEST(FormatV2Test, BytesAreRecordOrderIndependent) {
  // Within-epoch order carries no semantics (paper section 3.3), so a
  // reordered trace must serialize to the identical byte stream -- the
  // property that makes chunk hashes comparable across producers.
  trace::Trace t = sample_trace();
  const std::string a = v2_bytes(t);
  std::reverse(t.misses.begin(), t.misses.end());
  std::reverse(t.barriers.begin(), t.barriers.end());
  EXPECT_EQ(v2_bytes(t), a);
}

TEST(FormatV2Test, AgreesWithTextAndBinaryCodecs) {
  const trace::Trace t = sample_trace();
  std::stringstream txt;
  trace::save_text(t, txt);
  trace::Trace via_text = trace::load_text(txt);
  std::stringstream bin(std::ios::in | std::ios::out | std::ios::binary);
  trace::save_binary(t, bin);
  trace::Trace via_bin = trace::load_binary(bin);
  trace::canonicalize(via_text);
  trace::canonicalize(via_bin);
  const trace::Trace via_v2 = load_v2_bytes(v2_bytes(t));
  EXPECT_EQ(via_text.misses, via_v2.misses);
  EXPECT_EQ(via_bin.misses, via_v2.misses);
  EXPECT_EQ(via_text.barriers, via_v2.barriers);
  EXPECT_EQ(via_bin.barriers, via_v2.barriers);
  EXPECT_EQ(via_text.labels, via_v2.labels);
  EXPECT_EQ(via_bin.labels, via_v2.labels);
}

TEST(FormatV2Test, StreamingReaderSkipsEmptyEpochGroups) {
  const trace::Trace t = sample_trace();  // epochs 0,1,3,4 -- 2 is empty
  std::istringstream is(v2_bytes(t, /*epochs_per_chunk=*/1));
  ChunkReader r(is);
  EXPECT_EQ(r.labels(), t.labels);
  std::vector<EpochId> firsts;
  ChunkRecords c;
  while (r.next(c)) {
    firsts.push_back(c.first_epoch);
    EXPECT_FALSE(c.hash_hex.empty());
    EXPECT_FALSE(c.misses.empty() && c.barriers.empty());
  }
  EXPECT_EQ(firsts, (std::vector<EpochId>{0, 1, 3, 4}));
  EXPECT_EQ(r.chunks(), 4u);
  EXPECT_EQ(r.misses(), t.misses.size());
  EXPECT_EQ(r.barriers(), t.barriers.size());
}

TEST(FormatV2Test, EpochsPerChunkGroups) {
  std::istringstream is(v2_bytes(sample_trace(), /*epochs_per_chunk=*/4));
  ChunkReader r(is);
  EXPECT_EQ(r.epochs_per_chunk(), 4u);
  ChunkRecords c;
  std::vector<EpochId> firsts;
  while (r.next(c)) firsts.push_back(c.first_epoch);
  EXPECT_EQ(firsts, (std::vector<EpochId>{0, 4}));  // [0,4) and [4,5)
}

TEST(FormatV2Test, SplitSectionsConcatenateToInput) {
  const std::string bytes = v2_bytes(sample_trace());
  const V2Sections s = split_v2(bytes);
  EXPECT_EQ(s.chunks.size(), 4u);
  std::string glued = s.header;
  for (const auto& c : s.chunks) glued += c;
  glued += s.trailer;
  EXPECT_EQ(glued, bytes);
}

TEST(FormatV2Test, EveryStrictPrefixIsRejected) {
  const std::string bytes = v2_bytes(sample_trace());
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    EXPECT_THROW((void)load_v2_bytes(bytes.substr(0, cut)),
                 std::runtime_error)
        << "prefix of " << cut << " bytes decoded";
  }
}

TEST(FormatV2Test, FlippedPayloadBitFailsHashCheck) {
  const std::string bytes = v2_bytes(sample_trace());
  const V2Sections s = split_v2(bytes);
  // Flip one bit in the last byte of the first chunk's payload (the
  // length, hash, and framing stay intact, so only the hash check or the
  // canonical-order check can catch it).
  std::string mutated = bytes;
  const std::size_t off = s.header.size() + s.chunks[0].size() - 1;
  mutated[off] = static_cast<char>(mutated[off] ^ 0x01);
  expect_trace_error(mutated, "chunk hash mismatch");
}

TEST(FormatV2Test, RejectsReorderedChunks) {
  const std::string bytes = v2_bytes(sample_trace());
  V2Sections s = split_v2(bytes);
  std::swap(s.chunks[0], s.chunks[1]);
  std::string glued = s.header;
  for (const auto& c : s.chunks) glued += c;
  glued += s.trailer;
  expect_trace_error(glued, "chunks out of order");
}

TEST(FormatV2Test, RejectsTrailingJunk) {
  expect_trace_error(v2_bytes(sample_trace()) + "x", "trailing junk");
}

TEST(FormatV2Test, RejectsTamperedTrailerCounts) {
  const std::string bytes = v2_bytes(sample_trace());
  const V2Sections s = split_v2(bytes);
  std::string glued = s.header;
  // Drop the final chunk but keep the original trailer.
  for (std::size_t i = 0; i + 1 < s.chunks.size(); ++i) glued += s.chunks[i];
  glued += s.trailer;
  expect_trace_error(glued, "trailer counts mismatch");
}

TEST(FormatV2Test, RejectsBadMagicAndVersion) {
  expect_trace_error("cicotrc1whatever", "bad v2 header");
  std::string bytes = v2_bytes(sample_trace());
  bytes[8] = 3;  // version varint follows the 8-byte magic
  expect_trace_error(bytes, "unsupported v2 version");
}

// --- object store -----------------------------------------------------------

TEST(ObjectStoreTest, ValidatesNames) {
  EXPECT_TRUE(validate_name("run-2026.08.08_a"));
  EXPECT_FALSE(validate_name(""));
  EXPECT_FALSE(validate_name(".hidden"));
  EXPECT_FALSE(validate_name("a/b"));
  EXPECT_FALSE(validate_name("a b"));
}

TEST(ObjectStoreTest, BlobPutGetRoundTrip) {
  TempDir tmp;
  ObjectStore s(tmp.sub("st"));
  // 150000 bytes => three 64 KiB chunks; not a trace, so kind=blob.
  std::string blob(150000, '\0');
  std::uint64_t x = 1;  // aperiodic fill so no two 64 KiB chunks collide
  for (auto& c : blob) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    c = static_cast<char>(x >> 56);
  }
  const PutStats st = s.put("report.json", blob);
  EXPECT_EQ(st.kind, ArtifactKind::Blob);
  EXPECT_EQ(st.objects_total, 3u);
  EXPECT_EQ(st.objects_new, 3u);
  EXPECT_EQ(st.bytes_total, blob.size());
  EXPECT_EQ(s.get("report.json"), blob);
  // Same bytes under a second name: everything dedupes.
  const PutStats again = s.put("copy.json", blob);
  EXPECT_EQ(again.objects_new, 0u);
  EXPECT_EQ(again.bytes_new, 0u);
}

TEST(ObjectStoreTest, NormalizesTracesToV2AndGetReproduces) {
  TempDir tmp;
  ObjectStore s(tmp.sub("st"));
  const trace::Trace t = sample_trace();
  std::stringstream txt;
  trace::save_text(t, txt);
  const PutStats st = s.put("run1", txt.str());
  EXPECT_EQ(st.kind, ArtifactKind::TraceV2);
  EXPECT_EQ(st.objects_total, 6u);  // header + 4 epoch chunks + trailer
  const std::string stored = s.get("run1");
  EXPECT_TRUE(is_v2(stored));
  const trace::Trace back = load_v2_bytes(stored);
  EXPECT_EQ(back.misses, t.misses);
  EXPECT_EQ(back.barriers, t.barriers);
  EXPECT_EQ(back.labels, t.labels);

  // The v1 binary spelling of the same trace stores identical objects.
  std::stringstream bin(std::ios::in | std::ios::out | std::ios::binary);
  trace::save_binary(t, bin);
  const PutStats st2 = s.put("run1-bin", bin.str());
  EXPECT_EQ(st2.kind, ArtifactKind::TraceV2);
  EXPECT_EQ(st2.objects_new, 0u);
  EXPECT_EQ(s.get("run1-bin"), stored);
}

TEST(ObjectStoreTest, OneEpochChangeCreatesOneNewObject) {
  // The dedupe the chunked format exists for: a run differing in a
  // single epoch shares the header, the trailer, and every other chunk.
  TempDir tmp;
  ObjectStore s(tmp.sub("st"));
  const trace::Trace a = sample_trace();
  trace::Trace b = a;
  for (auto& m : b.misses) {
    if (m.epoch == 3 && m.node == 2 && m.kind == trace::MissKind::ReadMiss) {
      m.addr += 8;
      break;
    }
  }
  const PutStats sa = s.put("run-a", v2_bytes(a));
  EXPECT_EQ(sa.objects_new, sa.objects_total);
  const PutStats sb = s.put("run-b", v2_bytes(b));
  EXPECT_EQ(sb.objects_total, sa.objects_total);
  EXPECT_EQ(sb.objects_new, 1u);  // only epoch 3's chunk
}

TEST(ObjectStoreTest, LsListsManifestsSorted) {
  TempDir tmp;
  ObjectStore s(tmp.sub("st"));
  s.put("zeta", "zz");
  s.put("alpha", "aa");
  const auto ls = s.ls();
  ASSERT_EQ(ls.size(), 2u);
  EXPECT_EQ(ls[0].name, "alpha");
  EXPECT_EQ(ls[1].name, "zeta");
  EXPECT_EQ(ls[0].kind, ArtifactKind::Blob);
  EXPECT_EQ(ls[0].bytes, 2u);
}

TEST(ObjectStoreTest, GcRemovesUnreferencedObjects) {
  TempDir tmp;
  ObjectStore s(tmp.sub("st"));
  s.put("keep", std::string(100, 'k'));
  s.put("drop", std::string(100, 'd'));
  // Remove one manifest behind the store's back; its object is now garbage.
  fs::remove(tmp.sub("st") + "/manifests/drop.json");
  const GcStats gc = s.gc();
  EXPECT_EQ(gc.objects_removed, 1u);
  EXPECT_EQ(gc.bytes_freed, 100u);
  EXPECT_EQ(s.get("keep"), std::string(100, 'k'));
  EXPECT_EQ(s.gc().objects_removed, 0u);  // idempotent
}

TEST(ObjectStoreTest, CorruptObjectFailsGetWithStoreError) {
  TempDir tmp;
  ObjectStore s(tmp.sub("st"));
  const PutStats st = s.put("r", std::string(256, 'r'));
  ASSERT_EQ(st.objects_total, 1u);
  // Flip a byte in the single object file.
  const Manifest m = s.read_manifest("r");
  const std::string path = tmp.sub("st") + "/objects/" +
                           m.objects[0].hash_hex.substr(0, 2) + "/" +
                           m.objects[0].hash_hex;
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekp(10);
    f.put('X');
  }
  try {
    (void)s.get("r");
    FAIL() << "expected corrupt object to throw";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_EQ(msg.rfind("store:", 0), 0u) << msg;
    EXPECT_NE(msg.find("corrupt"), std::string::npos) << msg;
  }
}

TEST(ObjectStoreTest, OpenExistingRefusesNonStore) {
  TempDir tmp;
  EXPECT_THROW(ObjectStore(tmp.sub("nope"), ObjectStore::Open::kExisting),
               std::runtime_error);
}

// --- sync -------------------------------------------------------------------

TEST(SyncTest, EmptyDestinationGetsByteIdenticalArtifacts) {
  TempDir tmp;
  ObjectStore src(tmp.sub("src"));
  const trace::Trace t = sample_trace();
  src.put("trace", v2_bytes(t));
  src.put("blob", std::string(70000, 'b'));

  ObjectStore dst(tmp.sub("dst"));
  const SyncStats st = sync_stores(src, dst);
  EXPECT_EQ(st.manifests_total, 2u);
  EXPECT_EQ(st.manifests_copied, 2u);
  EXPECT_EQ(st.objects_copied, 8u);  // 6 trace sections + 2 blob chunks
  EXPECT_EQ(dst.get("trace"), src.get("trace"));
  EXPECT_EQ(dst.get("blob"), src.get("blob"));

  // Re-sync: nothing moves.
  const SyncStats again = sync_stores(src, dst);
  EXPECT_EQ(again.manifests_copied, 0u);
  EXPECT_EQ(again.objects_copied, 0u);
  EXPECT_EQ(again.bytes_copied, 0u);
}

TEST(SyncTest, OneEpochDeltaMovesOneChunk) {
  TempDir tmp;
  ObjectStore src(tmp.sub("src"));
  const trace::Trace a = sample_trace();
  src.put("run-a", v2_bytes(a));
  ObjectStore dst(tmp.sub("dst"));
  sync_stores(src, dst);

  trace::Trace b = a;
  for (auto& m : b.misses) {
    if (m.epoch == 1) {
      m.addr += 8;
      break;
    }
  }
  src.put("run-b", v2_bytes(b));
  const SyncStats st = sync_stores(src, dst);
  EXPECT_EQ(st.manifests_copied, 1u);  // run-b only
  EXPECT_EQ(st.objects_copied, 1u);    // epoch 1's chunk only
  EXPECT_EQ(dst.get("run-b"), src.get("run-b"));
}

}  // namespace
}  // namespace cico::store
