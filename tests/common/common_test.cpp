#include <gtest/gtest.h>

#include <set>

#include "cico/common/pc_registry.hpp"
#include "cico/common/rng.hpp"
#include "cico/common/cost.hpp"
#include "cico/common/stats.hpp"

namespace cico {
namespace {

TEST(PcRegistryTest, InternIsIdempotent) {
  PcRegistry r;
  const PcId a = r.intern("f.c", 10, "x = y");
  const PcId b = r.intern("f.c", 10, "x = y");
  const PcId c = r.intern("f.c", 11, "x = y");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(r.info(a).line, 10);
  EXPECT_EQ(r.info(a).name, "x = y");
}

TEST(PcRegistryTest, ZeroIsReservedUnknown) {
  PcRegistry r;
  EXPECT_EQ(r.info(kNoPc).name, "<none>");
  EXPECT_GE(r.intern("a"), 1u);
}

TEST(PcRegistryTest, DescribeFormats) {
  PcRegistry r;
  const PcId a = r.intern("m.c", 7, "store");
  EXPECT_EQ(r.describe(a), "m.c:7(store)");
  const PcId b = r.intern("just-name");
  EXPECT_EQ(r.describe(b), "just-name");
}

TEST(StatsTest, PerNodeAndTotals) {
  Stats s(4);
  s.add(0, Stat::Traps);
  s.add(1, Stat::Traps, 5);
  s.add(3, Stat::Messages, 7);
  EXPECT_EQ(s.node(0, Stat::Traps), 1u);
  EXPECT_EQ(s.node(1, Stat::Traps), 5u);
  EXPECT_EQ(s.total(Stat::Traps), 6u);
  EXPECT_EQ(s.total(Stat::Messages), 7u);
  s.reset();
  EXPECT_EQ(s.total(Stat::Traps), 0u);
}

TEST(StatsTest, AllStatNamesDistinct) {
  std::set<std::string_view> names;
  for (std::size_t i = 0; i < kStatCount; ++i) {
    EXPECT_TRUE(names.insert(stat_name(static_cast<Stat>(i))).second);
  }
}

TEST(RngTest, DeterministicPerSeed) {
  Rng a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    const auto va = a.next();
    EXPECT_EQ(va, b.next());
    (void)c.next();
  }
  Rng a2(42), c2(43);
  EXPECT_NE(a2.next(), c2.next());
}

TEST(RngTest, UniformInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    const double v = r.range(-2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
    EXPECT_LT(r.below(10), 10u);
  }
}

TEST(CostModelTest, HwMissLatency) {
  CostModel c;
  EXPECT_EQ(c.hw_miss_latency(), c.net_hop * 2 + c.dir_hw + c.mem_access);
}

}  // namespace
}  // namespace cico
