// Determinism and schema contract of the obs layer (ISSUE 3 tentpole):
// the JSON run report and the Chrome trace export must be byte-identical
// for every --boundary-threads value, the report envelope must carry the
// pinned schema_version, and Json::parse(dump(x)) must round-trip
// byte-for-byte so consumers can rewrite reports losslessly.
#include <gtest/gtest.h>

#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "apps/jacobi.hpp"
#include "apps/matmul.hpp"
#include "cico/obs/collector.hpp"
#include "cico/obs/json.hpp"
#include "cico/obs/report.hpp"
#include "cico/obs/stream.hpp"
#include "cico/sim/machine.hpp"

namespace cico::obs {
namespace {

enum class AppKind { MatMul, Jacobi };

// Same workload shape as boundary_equiv_test: small caches so the apps
// actually miss, boundary_batch_min=2 so threads>1 really dispatch work.
sim::SimConfig report_cfg(AppKind app, std::uint32_t threads) {
  sim::SimConfig c;
  c.nodes = app == AppKind::MatMul ? 8 : 16;
  c.cache.size_bytes = 4096;
  c.cache.assoc = 4;
  c.cache.block_bytes = 32;
  c.boundary_threads = threads;
  c.boundary_batch_min = 2;
  return c;
}

std::unique_ptr<apps::App> make_app(AppKind app) {
  if (app == AppKind::MatMul) {
    apps::MatMulConfig c;
    c.n = 24;
    c.prow = 4;
    c.pcol = 2;
    return std::make_unique<apps::MatMul>(c, /*seed=*/2);
  }
  apps::JacobiConfig c;
  c.n = 16;
  c.steps = 2;
  c.p = 4;
  return std::make_unique<apps::Jacobi>(c, /*seed=*/2);
}

struct RunArtifacts {
  std::string report;  ///< dumped make_report envelope
  std::string events;  ///< Chrome trace-event JSON
};

RunArtifacts run_once(AppKind app, std::uint32_t threads) {
  const sim::SimConfig cfg = report_cfg(app, threads);
  sim::Machine m(cfg);
  Collector col;
  col.set_events_enabled(true);
  m.set_observer(&col);
  std::unique_ptr<apps::App> a = make_app(app);
  a->setup(m, apps::Variant::None);
  m.run([&](sim::Proc& p) { a->body(p); });
  EXPECT_TRUE(a->verify());

  std::vector<Json> runs;
  runs.push_back(run_json("run", m.exec_time(), m.epochs_completed(),
                          m.stats(), m.network(), col));
  const Json rep =
      make_report("run", config_json(cfg, "dir1sw", ""), std::move(runs));

  RunArtifacts out;
  out.report = rep.dump_string();
  std::ostringstream ev;
  col.write_chrome_trace(ev);
  out.events = ev.str();
  return out;
}

/// Same workload, but epoch rows stream through an EpochStreamWriter
/// sidecar instead of buffering in the Collector; returns the final
/// report bytes assembled via the splice resolver.
std::string run_streamed(AppKind app, std::uint32_t threads,
                         const std::string& sidecar) {
  const sim::SimConfig cfg = report_cfg(app, threads);
  sim::Machine m(cfg);
  Collector col;
  EpochStreamWriter writer(sidecar);
  col.set_epoch_sink(&writer);
  m.set_observer(&col);
  std::unique_ptr<apps::App> a = make_app(app);
  a->setup(m, apps::Variant::None);
  m.run([&](sim::Proc& p) { a->body(p); });

  EXPECT_TRUE(col.epochs().empty()) << "streaming must not buffer rows";
  EXPECT_GT(writer.rows(), 0u);
  EXPECT_EQ(writer.rows(), col.rows_flushed());

  std::vector<Json> runs;
  runs.push_back(run_json("run", m.exec_time(), m.epochs_completed(),
                          m.stats(), m.network(), col, "epochs0"));
  const Json rep =
      make_report("run", config_json(cfg, "dir1sw", ""), std::move(runs));
  std::ostringstream os;
  rep.dump(os, [&](std::ostream& s, std::string_view) {
    writer.splice_into(s);
  });
  return os.str();
}

class ReportEquiv : public ::testing::TestWithParam<AppKind> {};

TEST_P(ReportEquiv, StreamedEpochSeriesIsByteIdenticalToBuffered) {
  // O(1)-memory streaming must not change a single report byte, for any
  // boundary-thread count (rows flush on the coordinator at barriers, so
  // their order is canonical regardless of sharding).
  const RunArtifacts buffered = run_once(GetParam(), 1);
  const std::string dir = ::testing::TempDir();
  EXPECT_EQ(run_streamed(GetParam(), 1, dir + "epochs_t1.rows"),
            buffered.report);
  EXPECT_EQ(run_streamed(GetParam(), 4, dir + "epochs_t4.rows"),
            buffered.report);
}

TEST_P(ReportEquiv, StreamWriterRemovesItsSidecar) {
  const std::string sidecar = ::testing::TempDir() + "epochs_tmp.rows";
  (void)run_streamed(GetParam(), 1, sidecar);
  std::ifstream left(sidecar);
  EXPECT_FALSE(left.good()) << "sidecar not cleaned up: " << sidecar;
}

TEST_P(ReportEquiv, ReportBytesIdenticalAcrossBoundaryThreads) {
  const RunArtifacts serial = run_once(GetParam(), 1);
  ASSERT_FALSE(serial.report.empty());
  for (std::uint32_t t : {2u, 4u}) {
    const RunArtifacts sharded = run_once(GetParam(), t);
    EXPECT_EQ(sharded.report, serial.report) << "threads=" << t;
    EXPECT_EQ(sharded.events, serial.events) << "threads=" << t;
  }
}

TEST_P(ReportEquiv, ReportParsesAndRoundTripsByteForByte) {
  const RunArtifacts art = run_once(GetParam(), 2);
  const Json back = Json::parse(art.report);
  EXPECT_EQ(back.dump_string(), art.report);
  // The event export is also well-formed JSON.
  EXPECT_NO_THROW((void)Json::parse(art.events));
}

INSTANTIATE_TEST_SUITE_P(Apps, ReportEquiv,
                         ::testing::Values(AppKind::MatMul, AppKind::Jacobi),
                         [](const auto& info) {
                           return info.param == AppKind::MatMul ? "matmul"
                                                                : "jacobi";
                         });

TEST(ReportSchema, EnvelopeCarriesPinnedVersionAndSections) {
  const RunArtifacts art = run_once(AppKind::MatMul, 1);
  const Json rep = Json::parse(art.report);
  ASSERT_NE(rep.find("schema_version"), nullptr);
  EXPECT_EQ(rep.find("schema_version")->as_u64(), kReportSchemaVersion);
  ASSERT_NE(rep.find("command"), nullptr);
  EXPECT_EQ(rep.find("command")->as_string(), "run");
  ASSERT_NE(rep.find("config"), nullptr);
  ASSERT_NE(rep.find("runs"), nullptr);
  ASSERT_EQ(rep.find("runs")->size(), 1u);
  const Json& run = rep.find("runs")->at(0);
  for (const char* key : {"exec_time", "epochs", "totals", "per_node",
                          "cost_breakdown", "epoch_series", "hot_blocks"}) {
    EXPECT_NE(run.find(key), nullptr) << "missing run section: " << key;
  }
}

TEST(ReportSchema, DirectiveTablePartitionsDirectiveCycles) {
  // Schema v2: runs carry a per-directive {count, cycles} table whose
  // check-out/check-in/post-store cycles partition DirectiveCycles exactly
  // (prefetch issue is asynchronous and deliberately outside the sum).
  const sim::SimConfig cfg = report_cfg(AppKind::MatMul, 1);
  sim::Machine m(cfg);
  Collector col;
  m.set_observer(&col);
  std::unique_ptr<apps::App> a = make_app(AppKind::MatMul);
  a->setup(m, apps::Variant::Hand);  // hand CICO => nonzero directives
  m.run([&](sim::Proc& p) { a->body(p); });
  EXPECT_TRUE(a->verify());

  std::vector<Json> runs;
  runs.push_back(run_json("run", m.exec_time(), m.epochs_completed(),
                          m.stats(), m.network(), col));
  const Json rep =
      make_report("run", config_json(cfg, "dir1sw", ""), std::move(runs));
  const Json& run = rep.find("runs")->at(0);
  const Json* dir = run.find("directives");
  ASSERT_NE(dir, nullptr);
  std::uint64_t partition = 0;
  for (const char* kind : {"check_out_x", "check_out_s", "check_in",
                           "prefetch_x", "prefetch_s", "post_store"}) {
    const Json* entry = dir->find(kind);
    ASSERT_NE(entry, nullptr) << kind;
    ASSERT_NE(entry->find("count"), nullptr) << kind;
    ASSERT_NE(entry->find("cycles"), nullptr) << kind;
    if (std::string(kind).rfind("prefetch", 0) != 0) {
      partition += entry->find("cycles")->as_u64();
    }
  }
  const Stats& s = m.stats();
  EXPECT_GT(dir->find("check_in")->find("count")->as_u64(), 0u);
  EXPECT_EQ(dir->find("check_in")->find("count")->as_u64(),
            s.total(Stat::CheckIns));
  EXPECT_EQ(dir->find("check_out_x")->find("count")->as_u64(),
            s.total(Stat::CheckOutX));
  EXPECT_EQ(partition, s.total(Stat::DirectiveCycles));
  EXPECT_EQ(partition,
            run.find("cost_breakdown")->find("directive_cycles")->as_u64());
}

TEST(ReportSchema, ConfigExcludesHostTuningKnobs) {
  // boundary_threads is a host performance knob; leaking it into the
  // report would make equal runs compare unequal.
  const RunArtifacts a = run_once(AppKind::MatMul, 1);
  EXPECT_EQ(a.report.find("boundary_threads"), std::string::npos);
  EXPECT_EQ(a.report.find("wall"), std::string::npos);
}

TEST(ReportSchema, EpochSeriesSumsToRunTotals) {
  const sim::SimConfig cfg = report_cfg(AppKind::Jacobi, 1);
  sim::Machine m(cfg);
  Collector col;
  m.set_observer(&col);
  std::unique_ptr<apps::App> a = make_app(AppKind::Jacobi);
  a->setup(m, apps::Variant::None);
  m.run([&](sim::Proc& p) { a->body(p); });

  ASSERT_FALSE(col.epochs().empty());
  std::uint64_t misses = 0;
  std::uint64_t traps = 0;
  Cycle last_end = 0;
  for (const EpochRow& row : col.epochs()) {
    misses += row.misses;
    traps += row.traps;
    EXPECT_GE(row.end_vt, last_end);
    last_end = row.end_vt;
  }
  const Stats& s = m.stats();
  EXPECT_EQ(misses, s.total(Stat::ReadMisses) + s.total(Stat::WriteMisses) +
                        s.total(Stat::WriteFaults));
  EXPECT_EQ(traps, s.total(Stat::Traps));
  EXPECT_EQ(last_end, m.exec_time());
}

TEST(ReportSchema, HotBlocksSortedByCountThenBlock) {
  const sim::SimConfig cfg = report_cfg(AppKind::MatMul, 1);
  sim::Machine m(cfg);
  Collector col;
  m.set_observer(&col);
  std::unique_ptr<apps::App> a = make_app(AppKind::MatMul);
  a->setup(m, apps::Variant::None);
  m.run([&](sim::Proc& p) { a->body(p); });

  const auto hot = col.hot_blocks();
  ASSERT_FALSE(hot.empty());
  EXPECT_LE(hot.size(), col.top_k());
  for (std::size_t i = 1; i < hot.size(); ++i) {
    const bool ordered = hot[i - 1].second > hot[i].second ||
                         (hot[i - 1].second == hot[i].second &&
                          hot[i - 1].first < hot[i].first);
    EXPECT_TRUE(ordered) << "at " << i;
  }
}

TEST(JsonModel, ScalarsAndEscapes) {
  Json o = Json::object();
  o.set("s", Json::string("a\"b\\c\n\t"));
  o.set("n", Json::number(std::uint64_t{18446744073709551615ULL}));
  o.set("neg", Json::number(std::int64_t{-42}));
  o.set("b", Json::boolean(true));
  o.set("nul", Json());
  const std::string text = o.dump_string();
  const Json back = Json::parse(text);
  EXPECT_EQ(back.dump_string(), text);
  EXPECT_EQ(back.find("s")->as_string(), "a\"b\\c\n\t");
  EXPECT_EQ(back.find("n")->as_u64(), 18446744073709551615ULL);
}

TEST(JsonModel, ParseErrorsCarryPosition) {
  try {
    (void)Json::parse("{\n  \"a\": ]\n}");
    FAIL() << "expected parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("2:"), std::string::npos) << e.what();
  }
  EXPECT_THROW((void)Json::parse("{} trailing"), std::runtime_error);
}

}  // namespace
}  // namespace cico::obs
