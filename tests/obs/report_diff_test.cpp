// Contract tests for the report differ (ISSUE 4 tentpole): the 0/1/2
// outcome mapping, per-metric tolerance rules (file grammar + flag form),
// divergence classification, the v1->v2 schema compatibility path, and
// line-numbered errors for malformed tolerance input.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>

#include "cico/obs/diff.hpp"
#include "cico/obs/json.hpp"

namespace cico::obs {
namespace {

// A small but shape-complete v2 report; tests perturb copies of it.
constexpr const char* kBase = R"({
  "schema_version": 2,
  "generator": "cachier",
  "command": "run",
  "config": {
    "nodes": 4,
    "protocol": "dir1sw"
  },
  "runs": [
    {
      "name": "run",
      "exec_time": 10000,
      "totals": {
        "traps": 120,
        "messages": 400
      },
      "cost_breakdown": {
        "directive_cycles": 500
      },
      "directives": {
        "check_in": {
          "count": 12,
          "cycles": 120
        }
      },
      "faults": {
        "msg_dropped": 0
      },
      "epoch_series": [
        {
          "epoch": 1,
          "end_vt": 5000
        }
      ],
      "hot_blocks": []
    }
  ]
})";

Json base_report() { return Json::parse(kBase); }

/// Returns kBase with one literal substring replaced.
Json perturbed(const std::string& from, const std::string& to) {
  std::string text = kBase;
  const std::size_t pos = text.find(from);
  EXPECT_NE(pos, std::string::npos) << from;
  text.replace(pos, from.size(), to);
  return Json::parse(text);
}

DiffResult run_diff(const Json& b, const Json& c,
                    const std::string& tol_text = {}) {
  ToleranceSet tol;
  if (!tol_text.empty()) tol = ToleranceSet::parse(tol_text);
  return diff_reports(b, c, tol);
}

// --- exit-code contract ----------------------------------------------------

TEST(ReportDiff, IdenticalReportsExitZero) {
  const DiffResult r = run_diff(base_report(), base_report());
  EXPECT_EQ(r.outcome, DiffOutcome::Identical);
  EXPECT_TRUE(r.divergences.empty());
  std::ostringstream os;
  print_diff(os, r);
  EXPECT_NE(os.str().find("identical (exit 0)"), std::string::npos);
}

TEST(ReportDiff, CounterDeltaWithoutToleranceIsRegression) {
  const DiffResult r =
      run_diff(base_report(), perturbed("\"traps\": 120", "\"traps\": 134"));
  EXPECT_EQ(r.outcome, DiffOutcome::Regression);
  ASSERT_EQ(r.divergences.size(), 1u);
  const Divergence& d = r.divergences[0];
  EXPECT_EQ(d.cls, DiffClass::Counter);
  EXPECT_EQ(d.path, "runs.0.totals.traps");
  EXPECT_TRUE(d.numeric);
  EXPECT_DOUBLE_EQ(d.delta, 14.0);
  EXPECT_NEAR(d.pct, 100.0 * 14.0 / 120.0, 1e-9);
  EXPECT_FALSE(d.tolerated);
  std::ostringstream os;
  print_diff(os, r);
  EXPECT_NE(os.str().find("REGRESSION"), std::string::npos);
  EXPECT_NE(os.str().find("(exit 2)"), std::string::npos);
}

TEST(ReportDiff, RelativeToleranceDowngradesToWithinTolerance) {
  const DiffResult r =
      run_diff(base_report(), perturbed("\"traps\": 120", "\"traps\": 134"),
               "runs.*.totals.traps = \"rel=15%\"\n");
  EXPECT_EQ(r.outcome, DiffOutcome::WithinTolerance);
  ASSERT_EQ(r.divergences.size(), 1u);
  EXPECT_TRUE(r.divergences[0].tolerated);
  EXPECT_EQ(r.divergences[0].rule, "rel=15%");
  std::ostringstream os;
  print_diff(os, r);
  EXPECT_NE(os.str().find("(exit 1)"), std::string::npos);
}

TEST(ReportDiff, AbsoluteToleranceBoundIsExact) {
  const Json cand = perturbed("\"traps\": 120", "\"traps\": 134");
  EXPECT_EQ(run_diff(base_report(), cand,
                     "runs.*.totals.traps = \"abs=14\"\n")
                .outcome,
            DiffOutcome::WithinTolerance);
  EXPECT_EQ(run_diff(base_report(), cand,
                     "runs.*.totals.traps = \"abs=13\"\n")
                .outcome,
            DiffOutcome::Regression);
}

TEST(ReportDiff, IgnoreDropsTheMetricEntirely) {
  // An ignored metric must not even force exit 1, or a permanently
  // volatile field would keep the gate from ever reporting "identical".
  const DiffResult r =
      run_diff(base_report(), perturbed("\"traps\": 120", "\"traps\": 999"),
               "runs.*.totals.traps = \"ignore\"\n");
  EXPECT_EQ(r.outcome, DiffOutcome::Identical);
  EXPECT_TRUE(r.divergences.empty());
}

TEST(ReportDiff, IgnoreDoesNotPruneDeeperOverrides) {
  // '**' matches the container paths too; if ignore pruned recursion, the
  // later per-field override could never fire.
  ToleranceSet tol;
  tol.add_flag("**=ignore");
  tol.add_flag("runs.*.totals.traps=abs=0");
  const DiffResult r = diff_reports(
      base_report(), perturbed("\"traps\": 120", "\"traps\": 134"), tol);
  EXPECT_EQ(r.outcome, DiffOutcome::Regression);
  ASSERT_EQ(r.divergences.size(), 1u);
  EXPECT_EQ(r.divergences[0].path, "runs.0.totals.traps");
}

TEST(ReportDiff, LaterRulesOverrideEarlierOnes) {
  ToleranceSet tol = ToleranceSet::parse(
      "runs.*.totals.traps = \"rel=1%\"\n");  // would fail
  tol.add_flag("runs.*.totals.traps=rel=50%");  // --tol wins
  const DiffResult r = diff_reports(
      base_report(), perturbed("\"traps\": 120", "\"traps\": 134"), tol);
  EXPECT_EQ(r.outcome, DiffOutcome::WithinTolerance);
}

// --- classification --------------------------------------------------------

TEST(ReportDiff, DivergencesAreClassifiedByPath) {
  struct Case {
    const char* from;
    const char* to;
    DiffClass cls;
  };
  const Case cases[] = {
      {"\"nodes\": 4", "\"nodes\": 8", DiffClass::Config},
      {"\"messages\": 400", "\"messages\": 500", DiffClass::Counter},
      {"\"directive_cycles\": 500", "\"directive_cycles\": 600",
       DiffClass::Cost},
      {"\"msg_dropped\": 0", "\"msg_dropped\": 3", DiffClass::Fault},
      {"\"end_vt\": 5000", "\"end_vt\": 6000", DiffClass::Epoch},
      {"\"cycles\": 120", "\"cycles\": 130", DiffClass::Counter},
  };
  for (const Case& c : cases) {
    const DiffResult r = run_diff(base_report(), perturbed(c.from, c.to));
    ASSERT_EQ(r.divergences.size(), 1u) << c.from;
    EXPECT_EQ(r.divergences[0].cls, c.cls)
        << c.from << " classified as "
        << diff_class_name(r.divergences[0].cls);
  }
}

TEST(ReportDiff, TypeChangeIsAStructureRegression) {
  const DiffResult r = run_diff(
      base_report(), perturbed("\"exec_time\": 10000", "\"exec_time\": \"x\""));
  EXPECT_EQ(r.outcome, DiffOutcome::Regression);
  ASSERT_EQ(r.divergences.size(), 1u);
  EXPECT_EQ(r.divergences[0].cls, DiffClass::Structure);
  EXPECT_FALSE(r.divergences[0].numeric);
}

TEST(ReportDiff, ArrayLengthChangeDiffsCommonPrefixToo) {
  const Json cand = perturbed(
      "{\n          \"epoch\": 1,\n          \"end_vt\": 5000\n        }",
      "{\n          \"epoch\": 1,\n          \"end_vt\": 5500\n        },\n"
      "        {\n          \"epoch\": 2,\n          \"end_vt\": 9000\n"
      "        }");
  const DiffResult r = run_diff(base_report(), cand);
  EXPECT_EQ(r.outcome, DiffOutcome::Regression);
  // Length mismatch at the array path plus the end_vt drift inside row 0.
  bool saw_len = false;
  bool saw_row = false;
  for (const Divergence& d : r.divergences) {
    if (d.path == "runs.0.epoch_series" && d.cls == DiffClass::Structure) {
      saw_len = true;
    }
    if (d.path == "runs.0.epoch_series.0.end_vt") {
      saw_row = true;
      EXPECT_EQ(d.cls, DiffClass::Epoch);
    }
  }
  EXPECT_TRUE(saw_len);
  EXPECT_TRUE(saw_row);
}

// --- v1 compatibility ------------------------------------------------------

TEST(ReportDiff, KeysMissingFromOlderSchemaAreTolerated) {
  // A v1 baseline has no per-directive table; diffing it against a v2
  // candidate must not flag the additive keys (or the version bump) as
  // regressions -- old goldens keep gating new binaries.
  std::string v1 = kBase;
  const std::size_t dpos = v1.find("      \"directives\"");
  ASSERT_NE(dpos, std::string::npos);
  const std::size_t dend = v1.find("      \"faults\"");
  v1.erase(dpos, dend - dpos);
  const std::size_t vpos = v1.find("\"schema_version\": 2");
  v1.replace(vpos, 19, "\"schema_version\": 1");

  const DiffResult r = run_diff(Json::parse(v1), base_report());
  EXPECT_EQ(r.outcome, DiffOutcome::WithinTolerance) << [&] {
    std::ostringstream os;
    print_diff(os, r);
    return os.str();
  }();
  EXPECT_EQ(r.regressions, 0u);
  EXPECT_GE(r.tolerated, 2u);  // schema_version bump + directives table
  for (const Divergence& d : r.divergences) {
    EXPECT_EQ(d.rule, "schema-compat") << d.path;
  }
}

TEST(ReportDiff, KeyMissingFromNewerSideStaysARegression) {
  // Same version pair, but the *newer* report lost a key: that is a real
  // structural regression, not schema growth.
  std::string v1 = kBase;
  const std::size_t vpos = v1.find("\"schema_version\": 2");
  v1.replace(vpos, 19, "\"schema_version\": 1");
  std::string v2_missing = kBase;
  const std::size_t hpos = v2_missing.find(",\n      \"hot_blocks\": []");
  ASSERT_NE(hpos, std::string::npos);
  v2_missing.erase(hpos, std::string(",\n      \"hot_blocks\": []").size());

  const DiffResult r = run_diff(Json::parse(v1), Json::parse(v2_missing));
  EXPECT_EQ(r.outcome, DiffOutcome::Regression);
  bool saw = false;
  for (const Divergence& d : r.divergences) {
    if (d.path == "runs.0.hot_blocks" && !d.tolerated) saw = true;
  }
  EXPECT_TRUE(saw);
}

TEST(ReportDiff, SameVersionMissingKeyIsARegression) {
  std::string missing = kBase;
  const std::size_t pos = missing.find(",\n        \"messages\": 400");
  ASSERT_NE(pos, std::string::npos);
  missing.erase(pos, std::string(",\n        \"messages\": 400").size());
  const DiffResult r = run_diff(base_report(), Json::parse(missing));
  EXPECT_EQ(r.outcome, DiffOutcome::Regression);
  ASSERT_EQ(r.divergences.size(), 1u);
  EXPECT_EQ(r.divergences[0].candidate, "<absent>");
}

// --- schema validation -----------------------------------------------------

TEST(ReportDiff, UnsupportedSchemaVersionThrows) {
  const Json bad = perturbed("\"schema_version\": 2", "\"schema_version\": 99");
  try {
    (void)run_diff(base_report(), bad);
    FAIL() << "expected schema error";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("unsupported schema_version 99"), std::string::npos)
        << msg;
    EXPECT_NE(msg.find("candidate"), std::string::npos) << msg;
  }
}

TEST(ReportDiff, MissingSchemaVersionThrows) {
  Json not_a_report = Json::object();
  not_a_report.set("hello", Json::string("world"));
  EXPECT_THROW((void)run_diff(not_a_report, base_report()),
               std::runtime_error);
  EXPECT_THROW((void)run_diff(base_report(), Json::string("nope")),
               std::runtime_error);
}

// --- one-line summary (`cachier diff --summary`) ---------------------------

TEST(DiffSummary, IdenticalIsOneStableLine) {
  const DiffResult r = run_diff(base_report(), base_report());
  std::ostringstream os;
  print_diff_summary(os, r);
  EXPECT_EQ(os.str(),
            "diff: IDENTICAL divergences=0 tolerated=0 regressions=0 exit=0\n");
}

TEST(DiffSummary, ToleratedDivergencesSummarizeAsOk) {
  const DiffResult r =
      run_diff(base_report(), perturbed("\"traps\": 120", "\"traps\": 134"),
               "runs.*.totals.traps = \"rel=15%\"\n");
  std::ostringstream os;
  print_diff_summary(os, r);
  EXPECT_EQ(os.str(),
            "diff: OK divergences=1 tolerated=1 regressions=0 exit=1\n");
}

TEST(DiffSummary, RegressionsCountOnlyUntolerated) {
  // Two divergences, one tolerated: the verdict follows the worst one.
  const DiffResult r = run_diff(
      base_report(),
      perturbed("\"traps\": 120,\n        \"messages\": 400",
                "\"traps\": 134,\n        \"messages\": 444"),
      "runs.*.totals.traps = \"rel=15%\"\n");
  ASSERT_EQ(r.outcome, DiffOutcome::Regression);
  std::ostringstream os;
  print_diff_summary(os, r);
  EXPECT_EQ(os.str(),
            "diff: REGRESSION divergences=2 tolerated=1 regressions=1 exit=2\n");
}

// --- tolerance grammar -----------------------------------------------------

TEST(ToleranceGrammar, ParsesSectionsCommentsAndQuotedKeys) {
  const ToleranceSet tol = ToleranceSet::parse(
      "# drift budget for the CI gate\n"
      "[tolerance]\n"
      "runs.*.totals.stall_cycles = \"abs=200, rel=1.5%\"  # both bounds\n"
      "\"runs.*.epoch_series.**\" = \"rel=5%\"\n"
      "config.faults = \"ignore\"\n");
  EXPECT_EQ(tol.size(), 3u);
  const ToleranceRule* r = tol.match("runs.1.totals.stall_cycles");
  ASSERT_NE(r, nullptr);
  EXPECT_TRUE(r->has_abs);
  EXPECT_DOUBLE_EQ(r->abs_bound, 200.0);
  EXPECT_TRUE(r->has_rel);
  EXPECT_DOUBLE_EQ(r->rel_bound, 1.5);
  // ** spans any depth, including zero extra segments.
  EXPECT_NE(tol.match("runs.0.epoch_series.3.end_vt"), nullptr);
  EXPECT_NE(tol.match("runs.0.epoch_series"), nullptr);
  // * is exactly one segment.
  EXPECT_EQ(tol.match("runs.0.extra.totals.stall_cycles"), nullptr);
  EXPECT_EQ(tol.match("unrelated"), nullptr);
}

TEST(ToleranceGrammar, ErrorsCarryLineNumbers) {
  try {
    (void)ToleranceSet::parse("config.nodes = \"abs=1\"\nbogus line\n");
    FAIL() << "expected parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2:"), std::string::npos)
        << e.what();
  }
  EXPECT_THROW((void)ToleranceSet::parse("a = \"abs=-1\"\n"),
               std::runtime_error);
  EXPECT_THROW((void)ToleranceSet::parse("a = \"frobnicate=3\"\n"),
               std::runtime_error);
  EXPECT_THROW((void)ToleranceSet::parse("[surprise]\n"), std::runtime_error);
  EXPECT_THROW((void)ToleranceSet::parse("a = \"unterminated\n"),
               std::runtime_error);
  ToleranceSet tol;
  EXPECT_THROW(tol.add_flag("no-spec-here"), std::runtime_error);
  EXPECT_THROW(tol.add_flag("a=rel=banana"), std::runtime_error);
}

}  // namespace
}  // namespace cico::obs
